(* symnet — run the paper's algorithms on generated graphs from the
   command line.

     symnet two-colouring --graph cycle:9
     symnet census        --graph random:200,100 --seed 3
     symnet bfs           --graph grid:6x8 --target 47
     symnet election      --graph random:64,32 --watch
     symnet traversal     --graph grid:5x5
     symnet tourist       --graph lollipop:10,20
     symnet bridges       --graph barbell:5
     symnet shortest-paths --graph grid:6x8 --sinks 0,47
     symnet random-walk   --graph petersen --moves 50
     symnet firing-squad  --graph path:40
     symnet sensitivity   --graph random:24,12
     symnet chaos         --graph random:32,16 --trials 5
     symnet shortest-paths --graph grid:6x8 --chaos bernoulli:p=0.05:kind=crash
*)

open Cmdliner
module Prng = Symnet_prng.Prng
module Graph = Symnet_graph.Graph
module Gen = Symnet_graph.Gen
module Spec = Symnet_graph.Spec
module Analysis = Symnet_graph.Analysis
module Network = Symnet_engine.Network
module Runner = Symnet_engine.Runner
module Chaos = Symnet_engine.Chaos
module Trace = Symnet_engine.Trace
module Semilattice = Symnet_core.Semilattice
module Stab = Symnet_sensitivity.Stabilization
module Obs = Symnet_obs
module A = Symnet_algorithms

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let graph_arg =
  let doc =
    "Graph to run on.  Forms: "
    ^ String.concat "; " Spec.known_forms
  in
  Arg.(value & opt string "random:32,16" & info [ "g"; "graph" ] ~docv:"SPEC" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let rounds_arg =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "max-rounds" ] ~docv:"N" ~doc:"Round budget.")

let watch_arg =
  Arg.(value & flag & info [ "w"; "watch" ] ~doc:"Print the network each round.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard synchronous rounds over $(docv) domains (0 = one per \
           recommended core).  The run is bit-identical at every count.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition the graph into $(docv) contiguous shards communicating \
           through explicit message queues (the sharded runtime), with rounds \
           parallelised over --domains.  Bit-identical to the flat engine at \
           every (shards, domains) combination; 1 = flat engine.")

(* 1 means the flat engine — only an explicit K > 1 engages the sharded
   runtime (K = 1 sharded is valid but only interesting to tests). *)
let shards_opt k =
  if k < 1 then begin
    prerr_endline "--shards must be >= 1";
    exit 2
  end
  else if k = 1 then None
  else Some k

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Inject stochastic faults during the run.  $(docv) is \
           PROC(;PROC)* with PROC = name(:key=value)*.  Names: \
           $(b,bernoulli) (key p), $(b,burst) (keys at, width, count), \
           $(b,periodic) (keys every, phase).  Common keys: kind \
           (kill_node|kill_edge|corrupt|crash), downtime, target \
           (uniform|degree|critical — critical aims at the algorithm's \
           sensitivity set, e.g. the sinks of shortest-paths).  Example: \
           'burst:at=5:count=3:kind=corrupt;bernoulli:p=0.02:kind=crash'.  \
           A $(b,link=)<drop|dup|reorder|delay> process faults the sharded \
           runtime's cross-shard channels instead of nodes (needs --shards \
           >= 2): keys p, target (all|cut — cut hits only channels crossing \
           bridge edges), window (reorder), rounds (delay), and the \
           channel-wide flags reliable (seq/ack/retransmit exchange), cap \
           (in-flight bound) and backoff.  ',' is accepted for ':' inside a \
           link segment.  Example: \
           'link=drop:p=0.05:reliable=true;link=reorder:window=4:p=0.1'.")

let sm_backend_arg =
  let backend =
    Arg.enum [ ("seq", `Seq); ("tree", `Tree); ("incr", `Incr) ]
  in
  Arg.(
    value
    & opt backend `Seq
    & info [ "sm-backend" ] ~docv:"BACKEND"
        ~doc:
          "SM evaluation backend for digest-capable algorithms: $(b,seq) \
           rescans every view each round, $(b,tree) keeps a per-node \
           summary segment tree rebuilt each round, $(b,incr) updates the \
           trees incrementally — O(log deg) per changed neighbour.  All \
           three are bit-identical; this is a pure performance switch.")

(* [critical] is the algorithm's χ set (its sensitive nodes) for
   [target=critical] specs: the sinks for shortest-paths, the originator
   for bfs, and the empty set for the 0-sensitive algorithms (census,
   two-colouring) — where Chaos falls back to uniform, which is exactly
   the paper's claim that no node is more critical than another. *)
let chaos_of ?critical seed = function
  | None -> None
  | Some spec -> (
      match Chaos.of_spec ~seed ?critical spec with
      | Ok c -> Some c
      | Error m ->
          prerr_endline m;
          exit 2)

let make_graph seed spec =
  let rng = Prng.create ~seed:(seed * 7919) in
  match Spec.parse rng spec with
  | Ok g -> g
  | Error m ->
      prerr_endline m;
      exit 2

let report_outcome (o : Runner.outcome) =
  Printf.printf "rounds: %d   activations: %d   %s\n" o.Runner.rounds
    o.Runner.activations
    (if o.Runner.quiesced then "quiesced"
     else if o.Runner.stopped then "stopped"
     else if o.Runner.gave_up then "gave up"
     else "budget exhausted");
  if o.Runner.faults_applied > 0 || o.Runner.faults_noop > 0
     || o.Runner.recoveries > 0
  then
    Printf.printf "faults: %d (%d no-op)   recoveries: %d\n"
      o.Runner.faults_applied o.Runner.faults_noop o.Runner.recoveries

(* --- telemetry flags shared by the run subcommands ------------------ *)

let metrics_arg =
  let fmt = Arg.enum [ ("json", `Json); ("csv", `Csv) ] in
  Arg.(
    value
    & opt (some fmt) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Print a metrics document ($(b,json) or $(b,csv)) instead of the \
           human-readable report.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a JSONL event trace of the run to $(docv).")

let recorder_of metrics trace_out =
  match (metrics, trace_out) with
  | None, None -> Obs.Recorder.null
  | _ ->
      let sink =
        match trace_out with
        | Some path -> (
            try Obs.Events.file path
            with Sys_error msg ->
              prerr_endline msg;
              exit 2)
        | None -> Obs.Events.null
      in
      Obs.Recorder.create ~sink ()

let report_metrics metrics recorder =
  Obs.Recorder.close recorder;
  match (metrics, Obs.Recorder.snapshot recorder) with
  | Some `Json, Some snap ->
      print_endline (Obs.Jsonx.to_string (Obs.Metrics.to_json snap))
  | Some `Csv, Some snap -> print_string (Obs.Metrics.to_csv snap)
  | _ -> ()

(* With --metrics the machine-readable document is the whole output, so
   the human-readable report lines are suppressed. *)
let unless_metrics metrics f = if metrics = None then f ()

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let two_colouring graph seed max_rounds domains shards watch chaos_spec metrics
    trace_out =
  let g = make_graph seed graph in
  let chaos = chaos_of ~critical:(fun ~round:_ -> []) seed chaos_spec in
  let net = Network.init ~rng:(Prng.create ~seed) g (A.Two_colouring.automaton ~seed:0) in
  let to_char = function
    | A.Two_colouring.Blank -> '_'
    | A.Two_colouring.Red -> 'R'
    | A.Two_colouring.Blue -> 'b'
    | A.Two_colouring.Failed -> 'X'
  in
  let recorder = recorder_of metrics trace_out in
  let o =
    if watch then
      Trace.watch ~max_rounds ~recorder ?chaos ~to_char ~out:print_endline net
    else
      Runner.run ~max_rounds ~recorder ~domains
        ?shards:(shards_opt shards) ?chaos net
  in
  unless_metrics metrics (fun () ->
      report_outcome o;
      print_endline
        (match A.Two_colouring.verdict net with
        | `Bipartite -> "verdict: bipartite"
        | `Odd_cycle -> "verdict: not bipartite"
        | `Undecided -> "verdict: undecided"));
  report_metrics metrics recorder

(* Drive the digest cache with a plain synchronous loop (the runner's
   fault pipeline does not apply; chaos is rejected by the callers).
   [?pool] shards tree builds, bit-identical at every domain count.
   Rounds are numbered from 1 and run_start/run_end bracket the loop so
   the event trace is byte-identical to a fault-free Runner.run of the
   equivalent classic automaton.  Returns (rounds, quiesced). *)
let drive_digest ~recorder ~max_rounds ~domains ~mode dg =
  let g = Network.graph (Network.digest_network dg) in
  Obs.Recorder.run_start recorder ~nodes:(Graph.node_count g)
    ~edges:(Graph.edge_count g) ~scheduler:"synchronous";
  let run pool =
    let round = ref 0 in
    let changed = ref true in
    while !changed && !round < max_rounds do
      incr round;
      Obs.Recorder.round_start recorder ~round:!round;
      changed := Network.digest_step ?pool ~mode dg;
      Obs.Recorder.round_end recorder ~round:!round ~changed:!changed
    done;
    (!round, not !changed)
  in
  let rounds, quiesced =
    if domains = 1 then run None
    else
      let domains =
        if domains = 0 then Symnet_engine.Domain_pool.recommended ()
        else domains
      in
      Symnet_engine.Domain_pool.with_pool ~domains (fun pool ->
          run (Some pool))
  in
  Obs.Recorder.run_end recorder ~round:rounds
    ~reason:(if quiesced then "quiesced" else "budget");
  (rounds, quiesced)

let reject_chaos_with_digest chaos_spec =
  if chaos_spec <> None then begin
    prerr_endline "--chaos is not supported with --sm-backend tree|incr";
    exit 2
  end

let census graph seed max_rounds domains shards chaos_spec metrics trace_out
    backend =
  let g = make_graph seed graph in
  let n = Graph.node_count g in
  let k = A.Census.recommended_k n in
  let recorder = recorder_of metrics trace_out in
  (match backend with
  | `Seq ->
      let chaos = chaos_of ~critical:(fun ~round:_ -> []) seed chaos_spec in
      let net = Network.init ~rng:(Prng.create ~seed) g (A.Census.automaton ~k) in
      let o =
        Runner.run ~max_rounds ~recorder ~domains
          ?shards:(shards_opt shards) ?chaos net
      in
      unless_metrics metrics (fun () ->
          report_outcome o;
          match
            List.filter_map (fun (_, s) -> A.Census.estimate s) (Network.states net)
          with
          | e :: _ ->
              Printf.printf "estimate: %.0f   truth: %d   ratio: %.2f\n" e n
                (e /. float_of_int n)
          | [] -> print_endline "no estimate")
  | (`Tree | `Incr) as mode ->
      (* Chaos needs the runner's fault pipeline; fault correctness of
         the digest cache is covered by the test suite. *)
      reject_chaos_with_digest chaos_spec;
      if shards > 1 then begin
        prerr_endline "--shards is not supported with --sm-backend tree|incr";
        exit 2
      end;
      let net =
        Network.init ~rng:(Prng.create ~seed) g
          (Symnet_core.Sm_digest.to_fssga (A.Census.digest ~k))
      in
      Network.set_recorder net recorder;
      let dg = Network.digest_of net (A.Census.digest ~k) in
      let rounds, quiesced =
        drive_digest ~recorder ~max_rounds ~domains ~mode dg
      in
      unless_metrics metrics (fun () ->
          Printf.printf "rounds: %d   activations: %d   %s\n" rounds
            (Network.activations net)
            (if quiesced then "quiesced" else "budget exhausted");
          match
            List.filter_map (fun (_, s) -> A.Census.estimate s) (Network.states net)
          with
          | e :: _ ->
              Printf.printf "estimate: %.0f   truth: %d   ratio: %.2f\n" e n
                (e /. float_of_int n)
          | [] -> print_endline "no estimate"));
  report_metrics metrics recorder

let bfs graph seed max_rounds domains shards target chaos_spec metrics trace_out
    =
  let g = make_graph seed graph in
  let chaos = chaos_of ~critical:(fun ~round:_ -> [ 0 ]) seed chaos_spec in
  let targets = match target with Some t -> [ t ] | None -> [] in
  let net =
    Network.init ~rng:(Prng.create ~seed) g (A.Bfs.automaton ~originator:0 ~targets)
  in
  let recorder = recorder_of metrics trace_out in
  let o =
    Runner.run ~max_rounds ~recorder ~domains ?shards:(shards_opt shards)
      ?chaos net
  in
  unless_metrics metrics (fun () ->
      report_outcome o;
      Printf.printf "originator status: %s\nlabels consistent: %b\n"
        (match A.Bfs.originator_status net with
        | A.Bfs.Found -> "found"
        | A.Bfs.Failed -> "failed"
        | A.Bfs.Waiting -> "waiting")
        (A.Bfs.labels_consistent net ~originator:0));
  report_metrics metrics recorder

let election graph seed max_rounds watch metrics trace_out =
  let g = make_graph seed graph in
  if watch then begin
    let net = Network.init ~rng:(Prng.create ~seed) g (A.Election.automaton ()) in
    let to_char s =
      if A.Election.is_leader s then 'L'
      else if A.Election.is_remaining s then 'r'
      else '_'
    in
    let o =
      Trace.watch ~max_rounds ~every:25 ~to_char ~out:print_endline
        ~stop:(fun ~round:_ net -> A.Election.leaders net <> [])
        net
    in
    report_outcome o
  end;
  let recorder = recorder_of metrics trace_out in
  let stats = A.Election.run ~rng:(Prng.create ~seed) g ~max_rounds ~recorder () in
  unless_metrics metrics (fun () ->
      Printf.printf
        "rounds: %d   phase changes: %d   stabilized: %b\nleaders: [%s]\n"
        stats.A.Election.rounds stats.A.Election.phase_increments
        stats.A.Election.stabilized
        (String.concat "; " (List.map string_of_int stats.A.Election.leaders)));
  report_metrics metrics recorder

let traversal graph seed max_rounds =
  let g = make_graph seed graph in
  let n = Graph.node_count g in
  let stats = A.Traversal.run ~rng:(Prng.create ~seed) g ~originator:0 ~max_rounds () in
  Printf.printf "hand moves: %d (2n-2 = %d)   rounds: %d   completed: %b\n"
    stats.A.Traversal.hand_moves ((2 * n) - 2) stats.A.Traversal.rounds
    stats.A.Traversal.completed

let tourist graph seed max_rounds =
  let g = make_graph seed graph in
  let stats =
    A.Greedy_tourist.run ~rng:(Prng.create ~seed) g ~start:0
      ~max_steps:max_rounds ()
  in
  Printf.printf
    "agent steps: %d   accounted FSSGA rounds: %d   visited: %d   completed: %b\n"
    stats.A.Greedy_tourist.agent_steps stats.A.Greedy_tourist.fssga_rounds
    stats.A.Greedy_tourist.visited stats.A.Greedy_tourist.completed

let bridges graph seed confidence =
  let g = make_graph seed graph in
  let t = A.Bridges.create ~rng:(Prng.create ~seed) g ~start:0 in
  let budget = A.Bridges.recommended_steps g ~c:confidence in
  A.Bridges.run t ~steps:budget;
  let suspected = A.Bridges.suspected_bridges t in
  let truth = Analysis.bridges g in
  Printf.printf "walk steps: %d\nsuspected bridges: [%s]\nactual bridges:    [%s]\nagreement: %b\n"
    budget
    (String.concat "; " (List.map string_of_int suspected))
    (String.concat "; " (List.map string_of_int truth))
    (List.sort compare suspected = truth)

let shortest_paths graph seed max_rounds domains shards sinks chaos_spec metrics
    trace_out =
  let g = make_graph seed graph in
  let sinks =
    match sinks with
    | "" -> [ 0 ]
    | s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  in
  (* The χ set of shortest-paths is its sink set (Sensitivity §2.2):
     deleting a sink is the one fault the labels cannot repair around. *)
  let chaos = chaos_of ~critical:(fun ~round:_ -> sinks) seed chaos_spec in
  let cap = Graph.node_count g in
  let net =
    Network.init ~rng:(Prng.create ~seed) g (A.Shortest_paths.automaton ~sinks ~cap)
  in
  let recorder = recorder_of metrics trace_out in
  let o =
    Runner.run ~max_rounds ~recorder ~domains ?shards:(shards_opt shards)
      ?chaos net
  in
  unless_metrics metrics (fun () ->
      report_outcome o;
      let dist = Analysis.distances g ~sources:sinks in
      let exact =
        List.for_all
          (fun (v, s) -> A.Shortest_paths.label s = min cap dist.(v))
          (Network.states net)
      in
      Printf.printf "labels equal true distances: %b\n" exact);
  report_metrics metrics recorder

let random_walk graph seed moves =
  let g = make_graph seed graph in
  let stats = A.Random_walk.run_moves ~rng:(Prng.create ~seed) g ~start:0 ~moves () in
  Printf.printf "moves: %d   rounds: %d   rounds/move: %.2f\n"
    stats.A.Random_walk.moves stats.A.Random_walk.rounds
    (float_of_int stats.A.Random_walk.rounds /. float_of_int (max 1 stats.A.Random_walk.moves));
  Printf.printf "visit counts: [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int stats.A.Random_walk.visits)))

let firing_squad graph seed max_rounds =
  let g = make_graph seed graph in
  let o = A.Firing_squad.run ~rng:(Prng.create ~seed) g ~general:0 ~max_rounds () in
  match o.A.Firing_squad.fire_round with
  | Some r ->
      Printf.printf "fired at round %d (%.2f n)   simultaneous: %b\n" r
        (float_of_int r /. float_of_int (Graph.node_count g))
        o.A.Firing_squad.simultaneous
  | None -> Printf.printf "did not fire within %d rounds\n" o.A.Firing_squad.rounds_run

let sensitivity graph seed =
  let module Sens = Symnet_sensitivity.Sensitivity in
  let rng = Prng.create ~seed in
  let spec_graph () = make_graph seed graph in
  let n = Graph.node_count (spec_graph ()) in
  let line name report =
    Printf.printf "%-18s max |chi| = %-4d reasonably correct: %d/%d\n" name
      report.Sens.max_critical report.Sens.correct report.Sens.trials
  in
  line "census"
    (Sens.estimate ~rng (Sens.census_instance ~k:(A.Census.recommended_k n))
       ~graph:spec_graph ~trials:5 ~faults_per_trial:2 ~max_steps:300);
  line "shortest-paths"
    (Sens.estimate ~rng (Sens.shortest_paths_instance ~sinks:[ 0 ])
       ~graph:spec_graph ~trials:5 ~faults_per_trial:2 ~max_steps:300);
  line "bridges"
    (Sens.estimate ~rng (Sens.bridges_instance ~steps_per_advance:50)
       ~graph:spec_graph ~trials:5 ~faults_per_trial:2 ~max_steps:300);
  line "greedy-tourist"
    (Sens.estimate ~rng (Sens.greedy_tourist_instance ()) ~graph:spec_graph
       ~trials:5 ~faults_per_trial:2 ~max_steps:2_000);
  line "milgram"
    (Sens.estimate ~rng (Sens.milgram_instance ()) ~graph:spec_graph ~trials:3
       ~faults_per_trial:0 ~max_steps:100_000);
  line "tree-census"
    (Sens.estimate ~rng (Sens.tree_census_instance ()) ~graph:spec_graph
       ~trials:3 ~faults_per_trial:1 ~max_steps:300)

(* --- symnet chaos: MTTR survey and determinism smoke test ----------- *)

(* Both Crash_restart and Corrupt_state, bounded so MTTR has a last-fault
   round to measure from; the corruption lands at the horizon so the
   rounds it takes to heal are what MTTR counts. *)
let default_chaos_spec =
  "burst:at=2:count=1:kind=crash:downtime=2;burst:at=5:width=2:count=1:kind=corrupt"

let chaos_processes seed spec =
  match Chaos.of_spec ~seed (Option.value ~default:default_chaos_spec spec) with
  | Ok c -> Chaos.processes c
  | Error m ->
      prerr_endline m;
      exit 2

(* A 2-colourable stand-in graph: the MTTR story for 2-colouring needs a
   graph where the legitimate verdict is [`Bipartite], whatever --graph
   says. *)
let bipartite_stand_in n = Gen.grid ~rows:4 ~cols:(max 2 (n / 4))

let chaos_smoke graph seed spec =
  (* Bit-identity under chaos: run each algorithm at --domains 1/2/4 with
     a full event trace into a buffer; traces and outcomes must agree
     byte for byte. *)
  let processes = chaos_processes seed spec in
  let check name mk_net =
    let run domains =
      let buf = Buffer.create 4096 in
      let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
      let o =
        Runner.run ~max_rounds:300 ~recorder ~domains
          ~chaos:(Chaos.create ~seed processes)
          (mk_net ())
      in
      Obs.Recorder.close recorder;
      ( Buffer.contents buf,
        (o.Runner.rounds, o.Runner.activations, o.Runner.transitions),
        (o.Runner.faults_applied, o.Runner.faults_noop) )
    in
    let base = run 1 in
    let ok = List.for_all (fun d -> run d = base) [ 2; 4 ] in
    Printf.printf "%-16s %s\n" name
      (if ok then "OK   (bit-identical at --domains 1/2/4)" else "MISMATCH");
    ok
  in
  let fresh_graph () = make_graph seed graph in
  let n = Graph.node_count (fresh_graph ()) in
  let ok_tc =
    check "two-colouring" (fun () ->
        Network.init ~rng:(Prng.create ~seed) (bipartite_stand_in n)
          (A.Two_colouring.automaton ~seed:0))
  in
  let ok_sp =
    check "shortest-paths" (fun () ->
        let g = fresh_graph () in
        Network.init ~rng:(Prng.create ~seed) g
          (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:(Graph.node_count g)))
  in
  if ok_tc && ok_sp then print_endline "chaos smoke: PASS"
  else begin
    print_endline "chaos smoke: FAIL";
    exit 1
  end

(* --- symnet chaos --link-smoke: the link layer's identity contract --- *)

let default_link_spec = "link=drop:p=0.05:reliable=true"

(* Two checks.  (1) Convergence: with the reliable exchange on, a lossy
   link must not change the computed fixed point — final states at every
   (shards, domains) pair equal the fault-free flat run's (§5.2: the
   self-stabilising relaxation absorbs delayed/dropped messages).
   Metrics documents are NOT compared across fault/no-fault runs —
   retransmits change round counts by design; states are the contract.
   (2) Determinism: at a fixed shard count the faulted run's full event
   trace is byte-identical at every domain count. *)
let link_smoke graph seed spec =
  let spec = Option.value ~default:default_link_spec spec in
  let fresh_net () =
    let g = make_graph seed graph in
    Network.init ~rng:(Prng.create ~seed) g
      (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:(Graph.node_count g))
  in
  let chaos () =
    match Chaos.of_spec ~seed spec with
    | Ok c -> c
    | Error m ->
        prerr_endline m;
        exit 2
  in
  Printf.printf "link smoke: %s\n" spec;
  let flat_net = fresh_net () in
  let (_ : Runner.outcome) = Runner.run ~max_rounds:100_000 flat_net in
  let flat = Network.states flat_net in
  let converged =
    List.for_all
      (fun (shards, domains) ->
        let net = fresh_net () in
        let o =
          Runner.run ~chaos:(chaos ()) ~max_rounds:100_000 ~domains ~shards net
        in
        let same = Network.states net = flat in
        Printf.printf "  shards=%d domains=%d rounds=%-6d %s\n" shards domains
          o.Runner.rounds
          (if same then "states = fault-free flat" else "STATE MISMATCH");
        same)
      [ (2, 1); (2, 2); (3, 1); (3, 2) ]
  in
  let trace domains =
    let buf = Buffer.create 4096 in
    let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
    let o =
      Runner.run ~chaos:(chaos ()) ~max_rounds:100_000 ~recorder ~domains
        ~shards:3 (fresh_net ())
    in
    Obs.Recorder.close recorder;
    (Buffer.contents buf, o.Runner.rounds, o.Runner.activations)
  in
  let deterministic = trace 1 = trace 2 in
  Printf.printf "  shards=3 traces at domains 1/2: %s\n"
    (if deterministic then "bit-identical" else "MISMATCH");
  if converged && deterministic then print_endline "link smoke: PASS"
  else begin
    print_endline "link smoke: FAIL";
    exit 1
  end

(* The paper's split, measured: shortest paths and semilattice gossip
   recover from transient corruption; the census OR and a corrupted
   2-colouring FAILED can never be cleared. *)
let chaos_mttr graph seed spec trials max_rounds =
  let processes = chaos_processes seed spec in
  let graph_thunk () = make_graph seed graph in
  let n = Graph.node_count (graph_thunk ()) in
  let mttr ~automaton ~graph ~corrupt ~legitimate =
    try
      Stab.mttr ~rng:(Prng.create ~seed) ~automaton ~graph ~chaos:processes
        ~corrupt ~legitimate ~trials ~max_rounds ()
    with Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  let line name (v : _ Stab.verdict) expect =
    Printf.printf "%-16s recovered %d/%d   MTTR: %-12s paper: %s\n" name
      v.Stab.recovered v.Stab.trials
      (if v.Stab.recovered = 0 then "-"
       else Printf.sprintf "%.1f rounds" v.Stab.mean_recovery_rounds)
      expect
  in
  let cap = n in
  line "shortest-paths"
    (mttr
       ~automaton:(A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap)
       ~graph:graph_thunk
       ~corrupt:(fun rng net v ->
         let s = Network.state net v in
         { s with A.Shortest_paths.label = Prng.int rng (cap + 1) })
       ~legitimate:(fun net ->
         let g = Network.graph net in
         let dist = Analysis.distances g ~sources:[ 0 ] in
         List.for_all
           (fun (v, s) -> A.Shortest_paths.label s = min cap dist.(v))
           (Network.states net)))
    "recovers (min+1 relaxation, §2.2)";
  let min_l = Semilattice.min_int_lattice in
  line "gossip-min"
    (mttr
       ~automaton:(Semilattice.gossip min_l ~init:(fun _ v -> v))
       ~graph:graph_thunk
       ~corrupt:(fun rng _net _v -> Prng.int rng n)
       ~legitimate:(fun net ->
         let g = Network.graph net in
         let expect =
           Semilattice.component_fixpoint min_l g ~init:(fun v -> v)
         in
         List.for_all
           (fun (v, s) -> List.assoc_opt v expect = Some s)
           (Network.states net)))
    "recovers (semilattice, §5)";
  let k = A.Census.recommended_k n in
  line "census"
    (mttr
       ~automaton:(A.Census.automaton ~k)
       ~graph:graph_thunk
       ~corrupt:(fun _rng _net _v -> A.Census.of_bits ~k ((1 lsl k) - 1))
       ~legitimate:(fun net ->
         match
           List.filter_map
             (fun (_, s) -> A.Census.estimate s)
             (Network.states net)
         with
         | [] -> false
         | es -> List.for_all (fun e -> e < 8. *. float_of_int n) es))
    "stuck (OR cannot unset a bit, §5.2)";
  line "two-colouring"
    (mttr
       ~automaton:(A.Two_colouring.automaton ~seed:0)
       ~graph:(fun () -> bipartite_stand_in n)
       ~corrupt:(fun _rng _net _v -> A.Two_colouring.Failed)
       ~legitimate:(fun net -> A.Two_colouring.verdict net = `Bipartite))
    "stuck (FAILED floods, §4.1)"

let chaos_cmd graph seed spec trials max_rounds smoke link_smoke_flag =
  if link_smoke_flag then link_smoke graph seed spec
  else if smoke then chaos_smoke graph seed spec
  else begin
    Printf.printf
      "chaos: %s\n(seed %d, %d trials; MTTR measured from the last possible \
       fault round)\n\n"
      (Option.value ~default:default_chaos_spec spec)
      seed trials;
    chaos_mttr graph seed spec trials max_rounds
  end

(* --- symnet profile: phase spans + per-round timeline ---------------- *)

let write_file path contents =
  match open_out path with
  | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc contents)
  | exception Sys_error msg ->
      prerr_endline msg;
      exit 2

let profile algo graph seed max_rounds domains shards chaos_spec out
    timeline_out span_capacity backend =
  let g = make_graph seed graph in
  let n = Graph.node_count g in
  let spans =
    try Obs.Span.create ~capacity:span_capacity ()
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  let timeline = Obs.Timeline.create () in
  let recorder = Obs.Recorder.create ~spans ~timeline () in
  let run ?critical automaton =
    let chaos = chaos_of ?critical seed chaos_spec in
    let net = Network.init ~rng:(Prng.create ~seed) g automaton in
    Runner.run ~max_rounds ~recorder ~domains ?shards:(shards_opt shards)
      ?chaos net
  in
  let run_digest mode digest =
    reject_chaos_with_digest chaos_spec;
    if shards > 1 then begin
      prerr_endline "--shards is not supported with --sm-backend tree|incr";
      exit 2
    end;
    let net =
      Network.init ~rng:(Prng.create ~seed) g
        (Symnet_core.Sm_digest.to_fssga digest)
    in
    Network.set_recorder net recorder;
    let dg = Network.digest_of net digest in
    let rounds, quiesced = drive_digest ~recorder ~max_rounds ~domains ~mode dg in
    (rounds, Network.activations net, quiesced)
  in
  let o =
    match (algo, backend) with
    | `Census, ((`Tree | `Incr) as mode) ->
        `Digest (run_digest mode (A.Census.digest ~k:(A.Census.recommended_k n)))
    | _, (`Tree | `Incr) ->
        prerr_endline "--sm-backend tree|incr is only supported for census";
        exit 2
    | `Census, `Seq ->
        `Outcome
          (run
             ~critical:(fun ~round:_ -> [])
             (A.Census.automaton ~k:(A.Census.recommended_k n)))
    | `Shortest_paths, `Seq ->
        `Outcome
          (run
             ~critical:(fun ~round:_ -> [ 0 ])
             (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n))
    | `Two_colouring, `Seq ->
        `Outcome
          (run ~critical:(fun ~round:_ -> []) (A.Two_colouring.automaton ~seed:0))
    | `Bfs, `Seq ->
        `Outcome
          (run
             ~critical:(fun ~round:_ -> [ 0 ])
             (A.Bfs.automaton ~originator:0 ~targets:[]))
  in
  Obs.Recorder.close recorder;
  write_file out (Obs.Jsonx.to_string (Obs.Span.chrome_json spans));
  (match timeline_out with
  | Some path -> write_file path (Obs.Timeline.to_jsonl timeline)
  | None -> ());
  (match o with
  | `Outcome o -> report_outcome o
  | `Digest (rounds, activations, quiesced) ->
      Printf.printf "rounds: %d   activations: %d   %s\n" rounds activations
        (if quiesced then "quiesced" else "budget exhausted"));
  Printf.printf "spans: %d recorded, %d dropped   trace: %s%s\n"
    (Obs.Span.recorded spans) (Obs.Span.dropped spans) out
    (match timeline_out with
    | Some p -> Printf.sprintf "   timeline: %s" p
    | None -> "");
  print_string
    (Obs.Stats.to_table
       (Obs.Stats.of_series (Obs.Timeline.series (Obs.Timeline.rows timeline))))

let stats file file_b diff timeline format =
  let summarise_file file =
    let summarise ic =
      if timeline then
        match Obs.Timeline.read_lines ic with
        | Error msg ->
            Printf.eprintf "%s: %s\n" file msg;
            exit 2
        | Ok rows -> Obs.Stats.of_series (Obs.Timeline.series rows)
      else
        match Obs.Stats.read_lines ic with
        | Error msg ->
            Printf.eprintf "%s: %s\n" file msg;
            exit 2
        | Ok events -> Obs.Stats.summarise events
    in
    if file = "-" then summarise stdin
    else
      match open_in file with
      | ic ->
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> summarise ic)
      | exception Sys_error msg ->
          prerr_endline msg;
          exit 2
  in
  if diff then begin
    match file_b with
    | None ->
        prerr_endline "symnet stats --diff needs two TRACE arguments";
        exit 2
    | Some b -> (
        let rows = Obs.Stats.diff (summarise_file file) (summarise_file b) in
        match format with
        | `Table -> print_string (Obs.Stats.diff_to_table rows)
        | `Json ->
            print_endline (Obs.Jsonx.to_string (Obs.Stats.diff_to_json rows)))
  end
  else begin
    (match file_b with
    | Some _ ->
        prerr_endline "symnet stats: a second TRACE argument requires --diff";
        exit 2
    | None -> ());
    let summaries = summarise_file file in
    match format with
    | `Table -> print_string (Obs.Stats.to_table summaries)
    | `Json -> print_endline (Obs.Jsonx.to_string (Obs.Stats.to_json summaries))
  end

(* ------------------------------------------------------------------ *)
(* serve / hammer                                                      *)
(* ------------------------------------------------------------------ *)

module Serve = Symnet_serve

let addr_of_string s =
  match Serve.Daemon.address_of_string s with
  | Ok a -> a
  | Error m ->
      prerr_endline m;
      exit 2

let serve graph seed max_rounds addr_s rounds_per_tick chaos_spec profile_out
    span_capacity read_deadline write_buf no_supervise =
  let g = make_graph seed graph in
  let addr = addr_of_string addr_s in
  let cap = Graph.node_count g in
  let chaos = chaos_of ~critical:(fun ~round:_ -> [ 0 ]) seed chaos_spec in
  let net =
    Network.init ~rng:(Prng.create ~seed) g
      (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap)
  in
  let spans =
    match profile_out with
    | Some _ -> Obs.Span.create ~capacity:span_capacity ()
    | None -> Obs.Span.null
  in
  let recorder =
    match profile_out with
    | Some _ -> Obs.Recorder.create ~spans ()
    | None -> Obs.Recorder.null
  in
  let session () = Runner.start ~max_rounds ~recorder ?chaos net in
  let d =
    try
      Serve.Daemon.create ~recorder ~rounds_per_tick
        ~read_deadline ~write_buf_limit:write_buf
        ~state_json:(fun s -> Obs.Jsonx.Int (A.Shortest_paths.label s))
        ~session addr
    with Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  Printf.printf "serving %s (%d nodes, %d edges) on %s\n%!" graph
    (Graph.node_count g) (Graph.edge_count g) addr_s;
  Serve.Daemon.serve_forever ~supervise:(not no_supervise) d;
  Printf.printf "served %d requests over %d rounds (%d supervisor restarts)\n%!"
    (Serve.Daemon.requests_served d)
    (Serve.Daemon.rounds_run d)
    (Serve.Daemon.restarts d);
  match profile_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Jsonx.to_string (Obs.Span.chrome_json spans));
      output_char oc '\n';
      close_out oc;
      Printf.printf "chrome trace: %s\n" path

let hammer addr_s seed requests mutate_every batch smoke do_shutdown
    fault_phase =
  let addr = addr_of_string addr_s in
  (* Retry refused connects with backoff: the daemon we are pointed at
     is usually freshly spawned (CI starts both in the same script), and
     losing the whole run to the bind/connect race made the smoke flaky. *)
  let connect = Serve.Hammer.retrying (fun () -> Serve.Daemon.connect addr) in
  let requests = if smoke then min requests 200 else requests in
  let n =
    match Serve.Hammer.probe_n ~connect () with
    | Some n -> n
    | None | (exception Unix.Unix_error _) ->
        prerr_endline "hammer: could not probe the daemon (is it running?)";
        exit 1
  in
  let o =
    Serve.Hammer.run ~seed ~requests ~mutate_every ~batch ~fault_phase ~connect
      ~n ()
  in
  Printf.printf
    "requests: %d (%d mutations, %d errors)   elapsed: %.2fs   qps: %.0f\n\
     latency us: p50 %.1f   p95 %.1f   max %.1f\n\
     stamp regressions: %d\n"
    o.Serve.Hammer.requests o.Serve.Hammer.mutations o.Serve.Hammer.errors
    o.Serve.Hammer.elapsed_s o.Serve.Hammer.qps o.Serve.Hammer.p50_us
    o.Serve.Hammer.p95_us o.Serve.Hammer.max_us
    o.Serve.Hammer.stamp_regressions;
  if fault_phase then
    Printf.printf "reconnects: %d   client-visible error window: %.3fs\n"
      o.Serve.Hammer.reconnects o.Serve.Hammer.error_window_s;
  (* Same grep-able row format as the bench harness, so serve latency
     lands in the BENCH/METRIC pipeline. *)
  (match Serve.Hammer.to_json o with
  | Obs.Jsonx.Obj fields ->
      print_string "METRIC ";
      print_endline
        (Obs.Jsonx.to_string
           (Obs.Jsonx.Obj
              (("experiment", Obs.Jsonx.String "serve_hammer")
              :: ("n", Obs.Jsonx.Int n)
              :: fields)))
  | _ -> ());
  if do_shutdown then Serve.Hammer.shutdown ~connect ();
  (* In fault-phase mode mid-run connection losses are the experiment,
     not a failure — but a stale snapshot never stops being one. *)
  if
    (o.Serve.Hammer.errors > 0 && not fault_phase)
    || o.Serve.Hammer.stamp_regressions > 0
  then exit 1

(* ------------------------------------------------------------------ *)
(* Command wiring                                                      *)
(* ------------------------------------------------------------------ *)

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let target_arg =
  Arg.(value & opt (some int) None & info [ "target" ] ~docv:"NODE" ~doc:"BFS target node.")

let sinks_arg =
  Arg.(value & opt string "0" & info [ "sinks" ] ~docv:"V1,V2" ~doc:"Sink nodes.")

let moves_arg =
  Arg.(value & opt int 20 & info [ "moves" ] ~docv:"N" ~doc:"Walker moves to simulate.")

let confidence_arg =
  Arg.(value & opt int 2 & info [ "c" ] ~docv:"C" ~doc:"Walk budget multiplier c.")

let trials_arg =
  Arg.(
    value & opt int 5
    & info [ "trials" ] ~docv:"N" ~doc:"Chaos trials per algorithm.")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "Determinism smoke test: run 2-colouring and shortest-paths under \
           the chaos spec at --domains 1/2/4 and compare full event traces \
           byte for byte; exit 1 on any mismatch.")

let link_smoke_arg =
  Arg.(
    value & flag
    & info [ "link-smoke" ]
        ~doc:
          "Link-layer identity smoke test: run sharded shortest-paths under \
           the --chaos link spec (default \
           'link=drop:p=0.05:reliable=true') at shards 2/3 × domains 1/2, \
           require final states bit-identical to the fault-free flat run \
           and traces byte-identical across domain counts; exit 1 on any \
           mismatch.")

let trace_in_arg =
  Arg.(
    value
    & pos 0 string "-"
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file ('-' for stdin).")

let trace_in_b_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"TRACE_B" ~doc:"Second trace, compared against with --diff.")

let stats_diff_arg =
  Arg.(
    value & flag
    & info [ "diff" ]
        ~doc:
          "Compare two traces: per series and field, the value in each run \
           plus absolute and percent change.")

let stats_format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format (table or json).")

let stats_timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "Treat the input as a per-round timeline (JSONL rows from symnet \
           profile --timeline-out) instead of an event trace; summarises \
           round_ns, activations, transitions, frontier, faults and \
           recoveries.  Composes with --diff.")

let profile_algo_arg =
  let algos =
    [
      ("census", `Census);
      ("shortest-paths", `Shortest_paths);
      ("two-colouring", `Two_colouring);
      ("bfs", `Bfs);
    ]
  in
  Arg.(
    required
    & pos 0 (some (enum algos)) None
    & info [] ~docv:"ALGO"
        ~doc:
          "Algorithm to profile: $(b,census), $(b,shortest-paths), \
           $(b,two-colouring) or $(b,bfs).")

let profile_out_arg =
  Arg.(
    value
    & opt string "trace.json"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Write the Chrome trace-event JSON here (open in \
           chrome://tracing or https://ui.perfetto.dev).")

let profile_timeline_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline-out" ] ~docv:"FILE"
        ~doc:
          "Also write the per-round timeline as JSONL (summarise later \
           with symnet stats --timeline).")

let span_capacity_arg =
  Arg.(
    value
    & opt int 65536
    & info [ "span-capacity" ] ~docv:"N"
        ~doc:
          "Span ring-buffer capacity; when a run records more, the oldest \
           spans are dropped (keep-last).")

let addr_arg =
  Arg.(
    value
    & opt string "unix:/tmp/symnet.sock"
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:
          "Socket to serve on / connect to: $(b,unix:PATH) or \
           $(b,tcp:HOST:PORT) (HOST a literal IP; empty means 127.0.0.1).")

let rounds_per_tick_arg =
  Arg.(
    value
    & opt int 1
    & info [ "rounds-per-tick" ] ~docv:"N"
        ~doc:"Rounds stepped between polls of the socket (default 1).")

let hammer_requests_arg =
  Arg.(
    value
    & opt int 2000
    & info [ "requests" ] ~docv:"N" ~doc:"Requests to fire.")

let hammer_mutate_arg =
  Arg.(
    value
    & opt int 20
    & info [ "mutate-every" ] ~docv:"K"
        ~doc:"Every $(docv)-th request is a mutation (0 disables).")

let hammer_batch_arg =
  Arg.(
    value
    & opt int 4
    & info [ "batch" ] ~docv:"B"
        ~doc:"Occasional batched request size (1 disables batching).")

let serve_profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Collect phase spans (rounds plus serve_snapshot/serve_request) \
           and write a Chrome trace-event JSON here on shutdown.")

let serve_read_deadline_arg =
  Arg.(
    value
    & opt float 30.
    & info [ "read-deadline" ] ~docv:"SECS"
        ~doc:
          "Evict a connection stalled mid-frame (either direction) for more \
           than $(docv) seconds.")

let serve_write_buf_arg =
  Arg.(
    value
    & opt int (4 * 1024 * 1024)
    & info [ "write-buf" ] ~docv:"BYTES"
        ~doc:
          "Per-connection response buffer bound; a reader leaving more than \
           $(docv) undelivered bytes is evicted as a slow reader.")

let serve_no_supervise_arg =
  Arg.(
    value & flag
    & info [ "no-supervise" ]
        ~doc:
          "Disable the supervisor: an exception escaping the serve core \
           kills the daemon instead of restarting it from the last \
           checkpoint.")

let hammer_fault_phase_arg =
  Arg.(
    value & flag
    & info [ "fault-phase" ]
        ~doc:
          "Treat mid-run connection failures as part of the experiment: \
           reconnect with backoff, retry the request, and report the \
           reconnect count and cumulative client-visible error window \
           (for measuring supervised-restart recovery).  Response errors \
           stop failing the run; snapshot staleness still does.")

let hammer_smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ] ~doc:"Cap the load at 200 requests (CI smoke mode).")

let hammer_shutdown_arg =
  Arg.(
    value & flag
    & info [ "shutdown" ] ~doc:"Ask the daemon to shut down afterwards.")

let commands =
  [
    cmd "two-colouring" "Decide bipartiteness (§4.1)."
      Term.(
        const two_colouring $ graph_arg $ seed_arg $ rounds_arg $ domains_arg
        $ shards_arg $ watch_arg $ chaos_arg $ metrics_arg $ trace_out_arg);
    cmd "census" "Flajolet-Martin size estimation (§1)."
      Term.(
        const census $ graph_arg $ seed_arg $ rounds_arg $ domains_arg
        $ shards_arg $ chaos_arg $ metrics_arg $ trace_out_arg $ sm_backend_arg);
    cmd "bfs" "Breadth-first search / broadcast (§4.3)."
      Term.(
        const bfs $ graph_arg $ seed_arg $ rounds_arg $ domains_arg $ shards_arg
        $ target_arg $ chaos_arg $ metrics_arg $ trace_out_arg);
    cmd "election" "Randomized leader election (§4.7)."
      Term.(
        const election $ graph_arg $ seed_arg $ rounds_arg $ watch_arg
        $ metrics_arg $ trace_out_arg);
    cmd "traversal" "Milgram's graph traversal (§4.5)."
      Term.(const traversal $ graph_arg $ seed_arg $ rounds_arg);
    cmd "tourist" "Greedy tourist traversal (§4.6)."
      Term.(const tourist $ graph_arg $ seed_arg $ rounds_arg);
    cmd "bridges" "Biconnectivity via a random walk (§2.1)."
      Term.(const bridges $ graph_arg $ seed_arg $ confidence_arg);
    cmd "shortest-paths" "Decentralized distances to sinks (§2.2)."
      Term.(
        const shortest_paths $ graph_arg $ seed_arg $ rounds_arg $ domains_arg
        $ shards_arg $ sinks_arg $ chaos_arg $ metrics_arg $ trace_out_arg);
    cmd "random-walk" "FSSGA random walk (§4.4)."
      Term.(const random_walk $ graph_arg $ seed_arg $ moves_arg);
    cmd "firing-squad" "Firing squad on a path (§5.2 extension)."
      Term.(const firing_squad $ graph_arg $ seed_arg $ rounds_arg);
    cmd "sensitivity" "Empirical k-sensitivity survey (§2)."
      Term.(const sensitivity $ graph_arg $ seed_arg);
    cmd "chaos"
      "Fault-injection survey: MTTR per algorithm under composable chaos \
       processes (state corruption §5.2, crash-restart), or a --smoke \
       determinism check."
      Term.(
        const chaos_cmd $ graph_arg $ seed_arg $ chaos_arg $ trials_arg
        $ rounds_arg $ smoke_arg $ link_smoke_arg);
    cmd "profile"
      "Profile a run: phase spans (read/merge/commit/fault/checkpoint/\
       recovery, per shard) to Chrome trace-event JSON, plus an optional \
       per-round timeline."
      Term.(
        const profile $ profile_algo_arg $ graph_arg $ seed_arg $ rounds_arg
        $ domains_arg $ shards_arg $ chaos_arg $ profile_out_arg
        $ profile_timeline_out_arg $ span_capacity_arg $ sm_backend_arg);
    cmd "stats"
      "Summarise a JSONL event trace (p50/p95/max per series), a profile \
       timeline with --timeline, or diff two traces with --diff."
      Term.(
        const stats $ trace_in_arg $ trace_in_b_arg $ stats_diff_arg
        $ stats_timeline_arg $ stats_format_arg);
    cmd "serve"
      "Resident daemon: keep a stabilizing shortest-paths network in memory, \
       stepping rounds while answering batched queries (states, distances, \
       census, components, bridges, telemetry) and mutations over a \
       length-prefixed socket protocol."
      Term.(
        const serve $ graph_arg $ seed_arg $ rounds_arg $ addr_arg
        $ rounds_per_tick_arg $ chaos_arg $ serve_profile_out_arg
        $ span_capacity_arg $ serve_read_deadline_arg $ serve_write_buf_arg
        $ serve_no_supervise_arg);
    cmd "hammer"
      "Stress client for symnet serve: a deterministic mixed \
       query/mutation load over one connection, reporting latency \
       percentiles as a METRIC row and failing on any error or snapshot \
       staleness."
      Term.(
        const hammer $ addr_arg $ seed_arg $ hammer_requests_arg
        $ hammer_mutate_arg $ hammer_batch_arg $ hammer_smoke_arg
        $ hammer_shutdown_arg $ hammer_fault_phase_arg);
  ]

let () =
  let info =
    Cmd.info "symnet" ~version:"1.0.0"
      ~doc:"Symmetric network computation (Pritchard & Vempala, SPAA 2006)"
  in
  exit (Cmd.eval (Cmd.group info commands))
