(* The telemetry subsystem: metric instrument semantics, JSONL sink
   round-trips, recorder neutrality (instrumented runs behave exactly
   like uninstrumented ones), and the runner's per-round hook contract. *)

module Graph = Symnet_graph.Graph
module Gen = Symnet_graph.Gen
module Prng = Symnet_prng.Prng
module View = Symnet_core.View
module Fssga = Symnet_core.Fssga
module Network = Symnet_engine.Network
module Fault = Symnet_engine.Fault
module Runner = Symnet_engine.Runner
module Trace = Symnet_engine.Trace
module Obs = Symnet_obs

let rng () = Prng.create ~seed:4242

let max_flood ~top =
  Fssga.deterministic ~name:"max-flood"
    ~init:(fun _g v -> v mod (top + 1))
    ~step:(fun ~self view ->
      let rec scan best j =
        if j > top then best
        else if j > best && View.at_least view j 1 then scan j (j + 1)
        else scan best (j + 1)
      in
      scan self 0)

(* --- metrics -------------------------------------------------------- *)

let test_counter_semantics () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  (* registration is idempotent: same instrument comes back *)
  Obs.Metrics.incr (Obs.Metrics.counter reg "c");
  let snap = Obs.Metrics.snapshot reg in
  Alcotest.(check (list (pair string int))) "counter" [ ("c", 6) ] snap.Obs.Metrics.counters;
  Alcotest.check_raises "monotonic" (Invalid_argument "Metrics.add: counters are monotonic")
    (fun () -> Obs.Metrics.add c (-1))

let test_histogram_semantics () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "h" ~bounds:[| 1; 4; 16 |] in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 4; 5; 16; 17; 1000 ];
  let snap = Obs.Metrics.snapshot reg in
  match snap.Obs.Metrics.histograms with
  | [ ("h", hs) ] ->
      Alcotest.(check int) "count" 8 hs.Obs.Metrics.count;
      Alcotest.(check int) "sum" 1045 hs.Obs.Metrics.sum;
      Alcotest.(check int) "min" 0 hs.Obs.Metrics.min;
      Alcotest.(check int) "max" 1000 hs.Obs.Metrics.max;
      Alcotest.(check (list (pair string int))) "buckets"
        [ ("<=1", 2); ("<=4", 2); ("<=16", 2); (">16", 2) ]
        hs.Obs.Metrics.buckets
  | _ -> Alcotest.fail "expected one histogram"

let test_metrics_json_valid () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter reg "n") 3;
  Obs.Metrics.set (Obs.Metrics.gauge reg "g") 1.5;
  Obs.Metrics.observe (Obs.Metrics.histogram reg "h") 7;
  let json = Obs.Metrics.to_json (Obs.Metrics.snapshot reg) in
  match Obs.Jsonx.of_string (Obs.Jsonx.to_string json) with
  | Ok reparsed ->
      Alcotest.(check (option int)) "counter survives" (Some 3)
        Obs.Jsonx.(Option.bind (member "counters" reparsed) (member "n")
                   |> Option.map (fun j -> Option.get (to_int j)))
  | Error e -> Alcotest.fail ("metrics JSON does not reparse: " ^ e)

(* --- jsonx ---------------------------------------------------------- *)

let test_jsonx_roundtrip () =
  let v =
    Obs.Jsonx.(
      Obj
        [
          ("s", String "a \"quoted\"\nline\t\\");
          ("i", Int (-42));
          ("f", Float 2.5);
          ("b", Bool true);
          ("nul", Null);
          ("l", List [ Int 1; Int 2; Obj [] ]);
        ])
  in
  match Obs.Jsonx.of_string (Obs.Jsonx.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (v = v')
  | Error e -> Alcotest.fail e

let test_jsonx_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Jsonx.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "{} {}"; "\"unterminated" ]

(* --- events and sinks ----------------------------------------------- *)

let all_events =
  Obs.Events.
    [
      Run_start { nodes = 5; edges = 4; scheduler = "synchronous" };
      Round_start { round = 1 };
      Activation { round = 1; node = 3; view_size = 2; changed = true };
      Transition { round = 1; node = 3 };
      Fault { round = 1; action = Kill_node 4 };
      Fault { round = 1; action = Kill_edge (0, 1) };
      Frame { round = 1; line = "1  .x.." };
      Round_end { round = 1; activations = 5; changed = true };
      Run_end { round = 1; activations = 5; reason = "quiesced"; spans_dropped = 0 };
    ]

let test_event_jsonl_roundtrip () =
  let buf = Buffer.create 256 in
  let sink = Obs.Events.buffer buf in
  List.iter (Obs.Events.emit sink) all_events;
  Obs.Events.close sink;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length all_events)
    (List.length lines);
  List.iter2
    (fun ev line ->
      match Obs.Events.of_line line with
      | Ok ev' -> Alcotest.(check bool) "event round-trips" true (ev = ev')
      | Error e -> Alcotest.fail (e ^ ": " ^ line))
    all_events lines

let test_file_sink () =
  let path = Filename.temp_file "symnet_obs" ".jsonl" in
  let sink = Obs.Events.file path in
  List.iter (Obs.Events.emit sink) all_events;
  Obs.Events.close sink;
  let ic = open_in path in
  let events =
    match Obs.Stats.read_lines ic with
    | Ok evs -> evs
    | Error e -> Alcotest.fail e
  in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file round-trips" true (events = all_events)

(* --- recorder neutrality -------------------------------------------- *)

let run_once recorder =
  let g = Gen.grid ~rows:4 ~cols:4 in
  let net = Network.init ~rng:(rng ()) g (max_flood ~top:20) in
  let faults = [ { Fault.at_round = 2; action = Fault.Kill_node 15 } ] in
  (Runner.run ~faults ~recorder net, Network.states net)

let test_recorder_neutral () =
  (* A run with a recorder must be indistinguishable from one without:
     same outcome fields, same final states. *)
  let o_plain, s_plain = run_once Obs.Recorder.null in
  let r = Obs.Recorder.create () in
  let o_rec, s_rec = run_once r in
  Alcotest.(check int) "rounds" o_plain.Runner.rounds o_rec.Runner.rounds;
  Alcotest.(check int) "activations" o_plain.Runner.activations
    o_rec.Runner.activations;
  Alcotest.(check bool) "quiesced" o_plain.Runner.quiesced o_rec.Runner.quiesced;
  Alcotest.(check bool) "stopped" o_plain.Runner.stopped o_rec.Runner.stopped;
  Alcotest.(check bool) "states" true (s_plain = s_rec);
  Alcotest.(check bool) "plain run has no snapshot" true
    (o_plain.Runner.metrics = None)

let test_recorder_counts_match_outcome () =
  let r = Obs.Recorder.create () in
  let o, _ = run_once r in
  match o.Runner.metrics with
  | None -> Alcotest.fail "expected a metrics snapshot"
  | Some snap ->
      let counter name = List.assoc name snap.Obs.Metrics.counters in
      Alcotest.(check int) "activations counter" o.Runner.activations
        (counter "activations");
      Alcotest.(check int) "rounds counter" o.Runner.rounds (counter "rounds");
      Alcotest.(check int) "fault counter" 1 (counter "faults");
      let hist = List.assoc "activations_per_round" snap.Obs.Metrics.histograms in
      Alcotest.(check int) "one observation per round" o.Runner.rounds
        hist.Obs.Metrics.count;
      Alcotest.(check int) "histogram sums to total activations"
        o.Runner.activations hist.Obs.Metrics.sum

let test_trace_events_consistent () =
  let buf = Buffer.create 1024 in
  let r = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
  let o, _ = run_once r in
  let events =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Obs.Events.of_line l with
           | Ok ev -> ev
           | Error e -> Alcotest.fail (e ^ ": " ^ l))
  in
  let count p = List.length (List.filter p events) in
  Alcotest.(check int) "round_start per round" o.Runner.rounds
    (count (function Obs.Events.Round_start _ -> true | _ -> false));
  Alcotest.(check int) "round_end per round" o.Runner.rounds
    (count (function Obs.Events.Round_end _ -> true | _ -> false));
  Alcotest.(check int) "activation events" o.Runner.activations
    (count (function Obs.Events.Activation _ -> true | _ -> false));
  Alcotest.(check int) "one run_start" 1
    (count (function Obs.Events.Run_start _ -> true | _ -> false));
  Alcotest.(check int) "one run_end" 1
    (count (function Obs.Events.Run_end _ -> true | _ -> false));
  Alcotest.(check int) "one fault" 1
    (count (function Obs.Events.Fault _ -> true | _ -> false))

(* --- runner hook ordering (runner.mli contract) ---------------------- *)

let test_runner_hook_order () =
  (* Per round: faults land first, then the scheduler, then [on_round],
     then [stop].  Witness all of it at round 3: the fault due that round
     must already be applied when [on_round] fires, and [on_round] must
     fire before [stop] is consulted. *)
  let g = Gen.path 6 in
  let net = Network.init ~rng:(rng ()) g (max_flood ~top:20) in
  let faults = [ { Fault.at_round = 3; action = Fault.Kill_node 5 } ] in
  let log = ref [] in
  let o =
    Runner.run ~faults
      ~on_round:(fun ~round net ->
        if round = 3 then
          Alcotest.(check bool) "fault applied before on_round" false
            (Graph.is_live_node (Network.graph net) 5);
        log := `On_round round :: !log)
      ~stop:(fun ~round _ ->
        log := `Stop round :: !log;
        round >= 3)
      net
  in
  Alcotest.(check bool) "stopped" true o.Runner.stopped;
  Alcotest.(check int) "stopped at 3" 3 o.Runner.rounds;
  Alcotest.(check
              (list (testable (fun ppf -> function
                 | `On_round r -> Format.fprintf ppf "on_round %d" r
                 | `Stop r -> Format.fprintf ppf "stop %d" r)
                 ( = ))))
    "on_round precedes stop each round"
    [ `On_round 1; `Stop 1; `On_round 2; `Stop 2; `On_round 3; `Stop 3 ]
    (List.rev !log)

(* --- Trace.watch tee ------------------------------------------------- *)

let test_watch_tees_frames () =
  let g = Gen.path 5 in
  let net = Network.init ~rng:(rng ()) g (max_flood ~top:20) in
  let buf = Buffer.create 1024 in
  let r = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
  let rendered = ref [] in
  let o =
    Trace.watch ~recorder:r
      ~to_char:(fun q -> Char.chr (Char.code '0' + (q mod 10)))
      ~out:(fun line -> rendered := line :: !rendered)
      net
  in
  let frames =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.filter_map (fun l ->
           match Obs.Events.of_line l with
           | Ok (Obs.Events.Frame { line; _ }) -> Some line
           | Ok _ -> None
           | Error e -> Alcotest.fail e)
  in
  Alcotest.(check int) "frame per rendered round" o.Runner.rounds
    (List.length frames);
  Alcotest.(check int) "out callback still fires" o.Runner.rounds
    (List.length !rendered);
  (* teed frames are the same renderings out received (minus the round
     number prefix) *)
  List.iter2
    (fun frame out_line ->
      Alcotest.(check bool) "frame text matches" true
        (String.length out_line >= String.length frame
        && frame
           = String.sub out_line
               (String.length out_line - String.length frame)
               (String.length frame)))
    frames
    (List.rev !rendered)

(* --- stats ----------------------------------------------------------- *)

let test_percentile_interpolates () =
  let a = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "p50" 25. (Obs.Stats.percentile 0.5 a);
  Alcotest.(check (float 1e-9)) "p0" 10. (Obs.Stats.percentile 0. a);
  Alcotest.(check (float 1e-9)) "p100" 40. (Obs.Stats.percentile 1. a);
  (* the old truncating estimator returned 30 here *)
  Alcotest.(check (float 1e-9)) "p95" 38.5 (Obs.Stats.percentile 0.95 a);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Obs.Stats.percentile 0.5 [||]))

let test_percentile_total_order () =
  (* Float.compare is a total order: NaN observations sort first,
     deterministically, instead of scrambling the sort (polymorphic
     compare on floats is also total, but the convention is pinned
     here on purpose).  With NaN at index 0, every percentile over the
     finite tail is still exact. *)
  let a = [| 30.; nan; 10.; 20. |] in
  Alcotest.(check bool) "p0 is the NaN" true
    (Float.is_nan (Obs.Stats.percentile 0. a));
  Alcotest.(check (float 1e-9)) "p100 unaffected" 30.
    (Obs.Stats.percentile 1. a);
  (* also pin that +/- 0 and denormals don't trip the sort *)
  let b = [| 0.; -0.; 1. |] in
  Alcotest.(check (float 1e-9)) "p0 with signed zeros" 0.
    (Obs.Stats.percentile 0. b)

let test_summary_empty_and_nan () =
  let empty = Obs.Stats.of_series [ ("empty", [||]) ] in
  (match empty with
  | [ s ] ->
      Alcotest.(check int) "count" 0 s.Obs.Stats.count;
      Alcotest.(check bool) "max of empty is nan, not -inf" true
        (Float.is_nan s.Obs.Stats.max);
      Alcotest.(check bool) "p50 of empty is nan" true
        (Float.is_nan s.Obs.Stats.p50)
  | _ -> Alcotest.fail "expected one summary");
  match Obs.Stats.of_series [ ("poisoned", [| 1.; nan; 3. |]) ] with
  | [ s ] ->
      Alcotest.(check bool) "NaN observation poisons max visibly" true
        (Float.is_nan s.Obs.Stats.max)
  | _ -> Alcotest.fail "expected one summary"

let test_stats_summarise () =
  let events =
    Obs.Events.
      [
        Round_end { round = 1; activations = 10; changed = true };
        Round_end { round = 2; activations = 20; changed = false };
        Run_end { round = 2; activations = 30; reason = "quiesced"; spans_dropped = 0 };
      ]
  in
  let summaries = Obs.Stats.summarise events in
  let find name = List.find (fun s -> s.Obs.Stats.name = name) summaries in
  let apr = find "activations_per_round" in
  Alcotest.(check int) "count" 2 apr.Obs.Stats.count;
  Alcotest.(check (float 1e-9)) "total" 30. apr.Obs.Stats.total;
  Alcotest.(check (float 1e-9)) "p50" 15. apr.Obs.Stats.p50;
  Alcotest.(check (float 1e-9)) "max" 20. apr.Obs.Stats.max;
  let rounds = find "rounds" in
  Alcotest.(check (float 1e-9)) "final round" 2. rounds.Obs.Stats.max

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "metrics JSON reparses" `Quick test_metrics_json_valid;
    Alcotest.test_case "jsonx round-trip" `Quick test_jsonx_roundtrip;
    Alcotest.test_case "jsonx rejects garbage" `Quick test_jsonx_rejects_garbage;
    Alcotest.test_case "event JSONL round-trip" `Quick test_event_jsonl_roundtrip;
    Alcotest.test_case "file sink round-trip" `Quick test_file_sink;
    Alcotest.test_case "recorder is neutral" `Quick test_recorder_neutral;
    Alcotest.test_case "recorder counts match outcome" `Quick
      test_recorder_counts_match_outcome;
    Alcotest.test_case "trace events consistent" `Quick
      test_trace_events_consistent;
    Alcotest.test_case "runner hook order" `Quick test_runner_hook_order;
    Alcotest.test_case "watch tees frames" `Quick test_watch_tees_frames;
    Alcotest.test_case "percentile interpolates" `Quick
      test_percentile_interpolates;
    Alcotest.test_case "percentile is a total order" `Quick
      test_percentile_total_order;
    Alcotest.test_case "summary of empty/NaN series" `Quick
      test_summary_empty_and_nan;
    Alcotest.test_case "stats summarise" `Quick test_stats_summarise;
  ]
