(* The profiling layer: span ring semantics (wrap, overflow, Chrome
   export), timeline JSONL round-trips, the perf-regression comparator's
   edge cases, monotonic timers, χ-critical chaos targeting — and the
   load-bearing property that turning profiling on leaves event traces
   byte-identical at every domain count. *)

module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Runner = Symnet_engine.Runner
module Chaos = Symnet_engine.Chaos
module Fault = Symnet_engine.Fault
module Obs = Symnet_obs
module Span = Symnet_obs.Span
module Timeline = Symnet_obs.Timeline
module Regress = Symnet_obs.Regress
module Jsonx = Symnet_obs.Jsonx
module A = Symnet_algorithms

(* --- spans ------------------------------------------------------------ *)

let test_span_disabled () =
  let sp = Span.null in
  Alcotest.(check bool) "disabled" false (Span.enabled sp);
  Alcotest.(check int) "now is 0" 0 (Span.now sp);
  Span.record sp Span.Round ~shard:0 ~round:1 ~t0:0;
  Alcotest.(check int) "record is a no-op" 0 (Span.recorded sp);
  Alcotest.(check int) "no capacity" 0 (Span.capacity sp);
  Alcotest.(check int) "nothing dropped" 0 (Span.dropped sp);
  Alcotest.(check (list reject)) "no spans" [] (Span.spans sp)

let test_span_records () =
  let sp = Span.create ~capacity:16 () in
  Alcotest.(check bool) "enabled" true (Span.enabled sp);
  let t0 = Span.now sp in
  Alcotest.(check bool) "clock past origin" true (t0 >= Span.origin_ns sp);
  Span.record sp Span.Read ~shard:2 ~round:7 ~t0;
  Span.record sp Span.Commit ~shard:0 ~round:7 ~t0;
  Alcotest.(check int) "two recorded" 2 (Span.recorded sp);
  Alcotest.(check int) "none dropped" 0 (Span.dropped sp);
  match Span.spans sp with
  | [ a; b ] ->
      Alcotest.(check string) "first phase" "read" (Span.phase_name a.Span.phase);
      Alcotest.(check int) "first shard" 2 a.Span.shard;
      Alcotest.(check int) "first round" 7 a.Span.round;
      Alcotest.(check bool) "duration non-negative" true (a.Span.dur_ns >= 0);
      Alcotest.(check string) "second phase" "commit"
        (Span.phase_name b.Span.phase)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l))

let test_span_ring_wrap () =
  (* capacity 4, 7 records: keep-last semantics retain the newest 4
     (rounds 3..6, oldest first) and count the 3 overwritten. *)
  let sp = Span.create ~capacity:4 () in
  for r = 0 to 6 do
    Span.record sp Span.Round ~shard:0 ~round:r ~t0:(Span.now sp)
  done;
  Alcotest.(check int) "recorded counts all" 7 (Span.recorded sp);
  Alcotest.(check int) "dropped = recorded - capacity" 3 (Span.dropped sp);
  let rounds = List.map (fun s -> s.Span.round) (Span.spans sp) in
  Alcotest.(check (list int)) "newest retained, oldest first" [ 3; 4; 5; 6 ]
    rounds

let test_span_capacity_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Span.create: capacity must be >= 1") (fun () ->
      ignore (Span.create ~capacity:0 ()))

let test_chrome_json_valid () =
  let sp = Span.create ~capacity:8 () in
  Span.record sp Span.Round ~shard:0 ~round:1 ~t0:(Span.now sp);
  Span.record sp Span.Read ~shard:1 ~round:1 ~t0:(Span.now sp);
  let doc = Span.chrome_json sp in
  match Jsonx.of_string (Jsonx.to_string doc) with
  | Error e -> Alcotest.fail ("chrome trace does not reparse: " ^ e)
  | Ok doc -> (
      match Jsonx.member "traceEvents" doc with
      | Some (Jsonx.List events) ->
          let names =
            List.filter_map
              (fun e ->
                Option.bind (Jsonx.member "name" e) Jsonx.to_str)
              events
          in
          Alcotest.(check bool) "round event present" true
            (List.mem "round" names);
          Alcotest.(check bool) "read event present" true
            (List.mem "read" names);
          (* complete events carry ph:"X" and non-negative µs stamps *)
          List.iter
            (fun e ->
              match Option.bind (Jsonx.member "ph" e) Jsonx.to_str with
              | Some "X" ->
                  let ts =
                    Option.bind (Jsonx.member "ts" e) Jsonx.to_float
                  in
                  Alcotest.(check bool) "ts >= 0" true
                    (match ts with Some t -> t >= 0. | None -> false)
              | _ -> ())
            events
      | _ -> Alcotest.fail "no traceEvents list")

(* --- timeline --------------------------------------------------------- *)

let mk_row i =
  {
    Timeline.round = i;
    wall_ns = 1000 * (i + 1);
    activations = 10 * i;
    transitions = 5 * i;
    frontier = 3 * i;
    faults = i mod 2;
    recoveries = i mod 3;
    digest_ns = 100 * i;
    exchange_ns = 10 * i;
  }

let test_timeline_disabled () =
  let t = Timeline.null in
  Alcotest.(check bool) "disabled" false (Timeline.enabled t);
  Timeline.record t ~round:1 ~wall_ns:5 ~activations:1 ~transitions:1
    ~frontier:1 ~faults:0 ~recoveries:0 ~digest_ns:0 ~exchange_ns:0;
  Alcotest.(check int) "record is a no-op" 0 (Timeline.length t);
  Alcotest.(check string) "empty jsonl" "" (Timeline.to_jsonl t)

let test_timeline_growth () =
  (* initial capacity 2, 5 rows: the columns double behind the scenes
     and every row survives in order. *)
  let t = Timeline.create ~capacity:2 () in
  let rows = List.init 5 mk_row in
  List.iter
    (fun (r : Timeline.row) ->
      Timeline.record t ~round:r.round ~wall_ns:r.wall_ns
        ~activations:r.activations ~transitions:r.transitions
        ~frontier:r.frontier ~faults:r.faults ~recoveries:r.recoveries
        ~digest_ns:r.digest_ns ~exchange_ns:r.exchange_ns)
    rows;
  Alcotest.(check int) "all rows kept" 5 (Timeline.length t);
  Alcotest.(check bool) "rows in order" true (Timeline.rows t = rows)

let test_timeline_jsonl_roundtrip () =
  let t = Timeline.create () in
  let rows = List.init 4 mk_row in
  List.iter
    (fun (r : Timeline.row) ->
      Timeline.record t ~round:r.round ~wall_ns:r.wall_ns
        ~activations:r.activations ~transitions:r.transitions
        ~frontier:r.frontier ~faults:r.faults ~recoveries:r.recoveries
        ~digest_ns:r.digest_ns ~exchange_ns:r.exchange_ns)
    rows;
  let path = Filename.temp_file "symnet_timeline" ".jsonl" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Timeline.to_jsonl t));
  let back =
    In_channel.with_open_text path (fun ic ->
        match Timeline.read_lines ic with
        | Ok rows -> rows
        | Error e -> Alcotest.fail e)
  in
  Sys.remove path;
  Alcotest.(check bool) "rows round-trip" true (back = rows)

let test_timeline_rejects_bad_row () =
  (match Timeline.row_of_json (Jsonx.Obj [ ("round", Jsonx.Int 1) ]) with
  | Ok _ -> Alcotest.fail "accepted a row missing most fields"
  | Error _ -> ());
  match Timeline.row_of_json (Jsonx.String "nope") with
  | Ok _ -> Alcotest.fail "accepted a non-object"
  | Error _ -> ()

let test_timeline_series () =
  let rows = List.init 3 mk_row in
  let series = Timeline.series rows in
  let col name = List.assoc name series in
  Alcotest.(check int) "eight series" 8 (List.length series);
  Alcotest.(check bool) "round_ns column" true
    (col "round_ns" = [| 1000.; 2000.; 3000. |]);
  Alcotest.(check bool) "frontier column" true
    (col "frontier" = [| 0.; 3.; 6. |]);
  (* the Stats bridge summarises without blowing up *)
  let summaries = Obs.Stats.of_series series in
  Alcotest.(check int) "one summary per series" 8 (List.length summaries)

(* --- regression comparator -------------------------------------------- *)

let sample w ns words =
  Jsonx.Obj
    [
      ("workload", Jsonx.String w);
      ("ns_per_activation", Jsonx.Float ns);
      ("words_per_activation", Jsonx.Float words);
    ]

let par w d rps =
  Jsonx.Obj
    [
      ("workload", Jsonx.String w);
      ("domains", Jsonx.Int d);
      ("rounds_per_sec", Jsonx.Float rps);
    ]

let doc ?(smoke = true) samples parallel =
  Jsonx.Obj
    [
      ("suite", Jsonx.String "engine");
      ("smoke", Jsonx.Bool smoke);
      ("samples", Jsonx.List samples);
      ("parallel", Jsonx.List parallel);
    ]

let compare_ok ?tolerance_pct ?words_slack ~baseline ~fresh () =
  match Regress.compare_docs ?tolerance_pct ?words_slack ~baseline ~fresh () with
  | Ok checks -> checks
  | Error e -> Alcotest.fail ("comparator errored: " ^ e)

let test_regress_identical_passes () =
  let d = doc [ sample "a" 100. 5. ] [ par "a" 2 1000. ] in
  let checks = compare_ok ~baseline:d ~fresh:d () in
  Alcotest.(check int) "three checks" 3 (List.length checks);
  Alcotest.(check int) "none failing" 0 (List.length (Regress.failing checks))

let test_regress_slowdown_and_boundary () =
  let base = doc [ sample "a" 100. 5. ] [] in
  let fresh = doc [ sample "a" 200. 5. ] [] in
  (* +100% fails at the default 50% tolerance... *)
  let checks = compare_ok ~baseline:base ~fresh () in
  Alcotest.(check int) "2x slowdown regresses" 1
    (List.length (Regress.failing checks));
  (* ...but the bound is strict: change == tolerance passes. *)
  let checks = compare_ok ~tolerance_pct:100. ~baseline:base ~fresh () in
  Alcotest.(check int) "exact boundary passes" 0
    (List.length (Regress.failing checks))

let test_regress_missing_and_new () =
  let base = doc [ sample "a" 100. 5.; sample "gone" 50. 1. ] [] in
  let fresh = doc [ sample "a" 100. 5.; sample "novel" 70. 2. ] [] in
  let checks = compare_ok ~baseline:base ~fresh () in
  let verdict_of w m =
    (List.find (fun c -> c.Regress.workload = w && c.Regress.metric = m) checks)
      .Regress.verdict
  in
  Alcotest.(check bool) "dropped workload fails" true
    (verdict_of "gone" "ns_per_activation" = Regress.Missing_fresh);
  Alcotest.(check bool) "new workload passes" true
    (verdict_of "novel" "ns_per_activation" = Regress.New_only);
  (* two Missing_fresh rows (ns + words) fail the gate; New_only doesn't *)
  Alcotest.(check int) "failing count" 2 (List.length (Regress.failing checks))

let test_regress_zero_baseline () =
  (* a zero ns baseline that grew is an infinite regression; one that
     stayed zero passes. *)
  let base = doc [ sample "a" 0. 0. ] [] in
  let fresh = doc [ sample "a" 10. 0. ] [] in
  let checks = compare_ok ~baseline:base ~fresh () in
  let ns =
    List.find (fun c -> c.Regress.metric = "ns_per_activation") checks
  in
  Alcotest.(check bool) "infinite change" true (ns.Regress.change_pct = infinity);
  Alcotest.(check bool) "regressed" true (ns.Regress.verdict = Regress.Regressed);
  let same = compare_ok ~baseline:base ~fresh:base () in
  Alcotest.(check int) "zero vs zero passes" 0
    (List.length (Regress.failing same))

let test_regress_words_slack () =
  (* a zero-allocation baseline tolerates [words_slack] absolute words of
     noise, but a real allocation regression still trips. *)
  let base = doc [ sample "a" 100. 0. ] [] in
  let noise = doc [ sample "a" 100. 5. ] [] in
  let checks = compare_ok ~baseline:base ~fresh:noise () in
  Alcotest.(check int) "5 words of noise pass" 0
    (List.length (Regress.failing checks));
  let real = doc [ sample "a" 100. 20. ] [] in
  let checks = compare_ok ~baseline:base ~fresh:real () in
  Alcotest.(check int) "20 words regress" 1
    (List.length (Regress.failing checks))

let test_regress_throughput_drop () =
  let base = doc [] [ par "a" 4 1000. ] in
  let fresh = doc [] [ par "a" 4 400. ] in
  (* -60% rounds/sec fails at 50% tolerance *)
  let checks = compare_ok ~baseline:base ~fresh () in
  Alcotest.(check int) "throughput drop regresses" 1
    (List.length (Regress.failing checks));
  (* rounds/sec at different domain counts never cross-compare *)
  let other = doc [] [ par "a" 2 400. ] in
  let checks = compare_ok ~baseline:base ~fresh:other () in
  let c = List.hd (Regress.failing checks) in
  Alcotest.(check string) "d4 row went missing" "rounds_per_sec@d4"
    c.Regress.metric

let test_regress_malformed_docs () =
  let good = doc [ sample "a" 100. 5. ] [] in
  (match
     Regress.compare_docs ~baseline:(Jsonx.Obj [])
       ~fresh:good ()
   with
  | Ok _ -> Alcotest.fail "accepted a suite-less baseline"
  | Error _ -> ());
  (match
     Regress.compare_docs ~baseline:good
       ~fresh:(doc ~smoke:false [ sample "a" 100. 5. ] [])
       ()
   with
  | Ok _ -> Alcotest.fail "accepted a smoke-flag mismatch"
  | Error _ -> ());
  match
    Regress.compare_docs ~baseline:good
      ~fresh:
        (Jsonx.Obj
           [ ("suite", Jsonx.String "engine"); ("smoke", Jsonx.Bool true) ])
      ()
  with
  | Ok _ -> Alcotest.fail "accepted a samples-less document"
  | Error _ -> ()

let test_regress_inject_self_test () =
  (* the CI gate's self-test: a document compared against its own 2x
     injected slowdown must fail, and the injection touches only the
     timing fields. *)
  let d = doc [ sample "a" 100. 5. ] [ par "a" 2 1000. ] in
  let slow = Regress.inject_slowdown ~factor:2. d in
  let checks = compare_ok ~baseline:d ~fresh:slow () in
  Alcotest.(check bool) "injected slowdown fails" true
    (Regress.failing checks <> []);
  let words =
    List.find (fun c -> c.Regress.metric = "words_per_activation") checks
  in
  Alcotest.(check (float 1e-9)) "words untouched" 5. words.Regress.fresh

(* --- timers and the round_ns histogram -------------------------------- *)

let test_metrics_timer () =
  let t = Obs.Metrics.timer_start () in
  let x = ref 0 in
  for i = 1 to 1000 do x := !x + i done;
  ignore !x;
  Alcotest.(check bool) "elapsed non-negative" true
    (Obs.Metrics.timer_elapsed_ns t >= 0);
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "round_ns" ~bounds:Obs.Metrics.ns_bounds in
  Obs.Metrics.observe_since h t;
  let snap = Obs.Metrics.snapshot reg in
  match snap.Obs.Metrics.histograms with
  | [ ("round_ns", hs) ] ->
      Alcotest.(check int) "one observation" 1 hs.Obs.Metrics.count
  | _ -> Alcotest.fail "expected the round_ns histogram"

let has_round_ns recorder =
  match Obs.Recorder.snapshot recorder with
  | None -> false
  | Some snap -> List.mem_assoc "round_ns" snap.Obs.Metrics.histograms

let test_round_ns_gated_by_timing () =
  (* the histogram exists iff timing is on — a default recorder's
     metrics document must stay byte-comparable across domain counts,
     so no timing data may leak into it. *)
  Alcotest.(check bool) "absent by default" false
    (has_round_ns (Obs.Recorder.create ()));
  Alcotest.(check bool) "present with spans" true
    (has_round_ns (Obs.Recorder.create ~spans:(Span.create ()) ()));
  Alcotest.(check bool) "present with explicit timing" true
    (has_round_ns (Obs.Recorder.create ~timing:true ()))

(* --- profiled runs ---------------------------------------------------- *)

let sp_automaton n = A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n

let test_profiled_run_populates () =
  let g = Gen.grid ~rows:6 ~cols:6 in
  let spans = Span.create () in
  let timeline = Timeline.create () in
  let recorder = Obs.Recorder.create ~spans ~timeline () in
  let net = Network.init ~rng:(Prng.create ~seed:11) g (sp_automaton 36) in
  let o = Runner.run ~max_rounds:100 ~recorder net in
  Obs.Recorder.close recorder;
  let phases =
    List.sort_uniq compare
      (List.map (fun s -> Span.phase_name s.Span.phase) (Span.spans spans))
  in
  Alcotest.(check bool) "round spans" true (List.mem "round" phases);
  Alcotest.(check bool) "read spans" true (List.mem "read" phases);
  Alcotest.(check bool) "commit spans" true (List.mem "commit" phases);
  let round_spans =
    List.filter (fun s -> s.Span.phase = Span.Round) (Span.spans spans)
  in
  Alcotest.(check int) "one round span per round" o.Runner.rounds
    (List.length round_spans);
  Alcotest.(check int) "one timeline row per round" o.Runner.rounds
    (Timeline.length timeline);
  let acts =
    List.fold_left
      (fun acc (r : Timeline.row) -> acc + r.Timeline.activations)
      0 (Timeline.rows timeline)
  in
  Alcotest.(check int) "timeline activations sum to outcome"
    o.Runner.activations acts

let prop_profiling_preserves_trace_bytes =
  (* the load-bearing determinism property: a run profiled with spans +
     timeline produces the same outcome and the byte-identical event
     trace as an unprofiled run, at every domain count, under chaos. *)
  QCheck.Test.make
    ~name:"profiling leaves event traces byte-identical (domains 1/2/4)"
    ~count:10
    QCheck.(triple (int_range 3 40) (int_range 0 40) (int_range 1 1000))
    (fun (n, extra, seed) ->
      let g =
        Gen.random_connected (Prng.create ~seed:(n + (131 * extra))) ~n
          ~extra_edges:extra
      in
      let run ~profiled domains =
        let g = Graph.copy g in
        let chaos =
          Chaos.create ~seed
            [
              Chaos.Burst
                { at = 2; width = 2; count = 1; kind = Chaos.Corrupt;
                  target = Chaos.Uniform };
              Chaos.Bernoulli
                { p = 0.1; kind = Chaos.Kill_edge; target = Chaos.Uniform };
            ]
        in
        let buf = Buffer.create 1024 in
        let recorder =
          if profiled then
            Obs.Recorder.create ~sink:(Obs.Events.buffer buf)
              ~spans:(Span.create ()) ~timeline:(Timeline.create ()) ()
          else Obs.Recorder.create ~sink:(Obs.Events.buffer buf) ()
        in
        let net = Network.init ~rng:(Prng.create ~seed) g (sp_automaton n) in
        let o = Runner.run ~chaos ~max_rounds:30 ~recorder ~domains net in
        Obs.Recorder.close recorder;
        ( o.Runner.rounds, o.Runner.activations, o.Runner.transitions,
          o.Runner.faults_applied, Network.states net, Buffer.contents buf )
      in
      let plain = run ~profiled:false 1 in
      List.for_all
        (fun domains -> run ~profiled:true domains = plain)
        [ 1; 2; 4 ])

(* --- χ-critical chaos targeting --------------------------------------- *)

let test_critical_spec_needs_provider () =
  (match Chaos.of_spec ~seed:1 "burst:at=1:count=1:target=critical" with
  | Ok _ -> Alcotest.fail "accepted target=critical without a provider"
  | Error _ -> ());
  match
    Chaos.of_spec ~seed:1
      ~critical:(fun ~round:_ -> [ 0 ])
      "burst:at=1:count=1:target=critical"
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("rejected target=critical with a provider: " ^ e)

let test_critical_targets_chi_set () =
  (* a Critical target hits only live members of the supplied χ set;
     when every member is dead it falls back to Uniform. *)
  let g = Gen.path 6 in
  let chaos =
    Chaos.create ~seed:9
      [
        Chaos.Burst
          { at = 1; width = 3; count = 1; kind = Chaos.Corrupt;
            target = Chaos.Critical (fun ~round:_ -> [ 2; 4 ]) };
      ]
  in
  List.iter
    (fun round ->
      match Chaos.actions_due chaos ~round g with
      | [ Fault.Corrupt_state n ] ->
          Alcotest.(check bool)
            (Printf.sprintf "round %d hits the chi set" round)
            true (n = 2 || n = 4)
      | l ->
          Alcotest.fail
            (Printf.sprintf "round %d: expected one corruption, got %d" round
               (List.length l)))
    [ 1; 2; 3 ];
  Graph.remove_node g 2;
  Graph.remove_node g 4;
  match Chaos.actions_due chaos ~round:1 g with
  | [ Fault.Corrupt_state n ] ->
      Alcotest.(check bool) "dead chi set falls back to uniform" true
        (Graph.is_live_node g n)
  | _ -> Alcotest.fail "expected one fallback corruption"

let suite =
  [
    Alcotest.test_case "span disabled semantics" `Quick test_span_disabled;
    Alcotest.test_case "span records" `Quick test_span_records;
    Alcotest.test_case "span ring wrap keeps last" `Quick test_span_ring_wrap;
    Alcotest.test_case "span capacity validated" `Quick
      test_span_capacity_invalid;
    Alcotest.test_case "chrome trace reparses" `Quick test_chrome_json_valid;
    Alcotest.test_case "timeline disabled semantics" `Quick
      test_timeline_disabled;
    Alcotest.test_case "timeline grows past capacity" `Quick
      test_timeline_growth;
    Alcotest.test_case "timeline JSONL round-trip" `Quick
      test_timeline_jsonl_roundtrip;
    Alcotest.test_case "timeline rejects bad rows" `Quick
      test_timeline_rejects_bad_row;
    Alcotest.test_case "timeline series for stats" `Quick test_timeline_series;
    Alcotest.test_case "regress: identical passes" `Quick
      test_regress_identical_passes;
    Alcotest.test_case "regress: slowdown and exact boundary" `Quick
      test_regress_slowdown_and_boundary;
    Alcotest.test_case "regress: missing and new workloads" `Quick
      test_regress_missing_and_new;
    Alcotest.test_case "regress: zero baseline" `Quick
      test_regress_zero_baseline;
    Alcotest.test_case "regress: words slack" `Quick test_regress_words_slack;
    Alcotest.test_case "regress: throughput drop" `Quick
      test_regress_throughput_drop;
    Alcotest.test_case "regress: malformed documents" `Quick
      test_regress_malformed_docs;
    Alcotest.test_case "regress: inject self-test" `Quick
      test_regress_inject_self_test;
    Alcotest.test_case "metrics timer" `Quick test_metrics_timer;
    Alcotest.test_case "round_ns gated by timing" `Quick
      test_round_ns_gated_by_timing;
    Alcotest.test_case "profiled run populates spans+timeline" `Quick
      test_profiled_run_populates;
    QCheck_alcotest.to_alcotest prop_profiling_preserves_trace_bytes;
    Alcotest.test_case "critical spec needs provider" `Quick
      test_critical_spec_needs_provider;
    Alcotest.test_case "critical targets chi set" `Quick
      test_critical_targets_chi_set;
  ]
