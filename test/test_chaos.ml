(* Chaos engine and recovery layer: graph snapshot/restore and node
   revival, network checkpoint/restore exactness (states, counters,
   dirty set), version monotonicity across restores, runner recovery
   policies and the progress watchdog, fault no-op accounting,
   crash-restart semantics and the chaos spec grammar. *)

module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Analysis = Symnet_graph.Analysis
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Runner = Symnet_engine.Runner
module Fault = Symnet_engine.Fault
module Chaos = Symnet_engine.Chaos
module Fssga = Symnet_core.Fssga
module Stab = Symnet_sensitivity.Stabilization
module Obs = Symnet_obs
module A = Symnet_algorithms

let graph () = Gen.random_connected (Prng.create ~seed:11) ~n:20 ~extra_edges:12
let sp n = A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n

(* --- Graph.snapshot / restore / revive_node ------------------------- *)

let observe_nv g =
  ( List.init (Graph.original_size g) (Graph.is_live_node g),
    List.init (Graph.original_size g) (Graph.degree g),
    List.sort compare (List.map (fun e -> e.Graph.id) (Graph.edges g)),
    Graph.node_count g,
    Graph.edge_count g )

let test_graph_snapshot_restore () =
  let g = graph () in
  Graph.remove_node g 3;
  let before = observe_nv g in
  let snap = Graph.snapshot g in
  Graph.remove_node g 5;
  Graph.remove_edge g 0;
  Graph.remove_node g 7;
  let v_mutated = Graph.version g in
  Alcotest.(check bool) "mutations observed" true (observe_nv g <> before);
  Graph.restore g snap;
  Alcotest.(check bool) "restore is observationally exact" true
    (observe_nv g = before);
  (* The version counter never rewinds: a restore is itself a mutation,
     so version-keyed caches invalidate instead of colliding. *)
  Alcotest.(check bool) "restore bumps the version past the divergence" true
    (Graph.version g > v_mutated)

let test_graph_restore_wrong_graph () =
  let g = graph () in
  let snap = Graph.snapshot g in
  let other = Gen.grid ~rows:3 ~cols:3 in
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Graph.restore: snapshot from a different graph")
    (fun () -> Graph.restore other snap)

let test_revive_node_roundtrip () =
  let g = graph () in
  let before = observe_nv g in
  Graph.remove_node g 4;
  Alcotest.(check bool) "node dead" false (Graph.is_live_node g 4);
  Graph.revive_node g 4;
  Alcotest.(check bool) "kill + revive is the identity (modulo version)" true
    (observe_nv g = before)

let test_revive_respects_dead_edges () =
  (* an edge explicitly killed while the node was down stays dead *)
  let g = graph () in
  let v = 4 in
  match Graph.incident g v with
  | [] -> Alcotest.fail "expected an incident edge"
  | e :: _ ->
      Graph.remove_node g v;
      Graph.remove_edge g e.Graph.id;
      Graph.revive_node g v;
      Alcotest.(check bool) "killed edge stays dead" false
        (Graph.is_live_edge g e.Graph.id);
      Alcotest.(check int) "degree counts only live edges"
        (List.length (Graph.neighbours g v))
        (Graph.degree g v)

(* --- Network.checkpoint / restore ----------------------------------- *)

(* Liveness/state observables only: the graph version is deliberately
   excluded because it is strictly monotonic — a restore bumps it, so a
   replay never repeats the version sequence even when everything else
   is bit-identical. *)
let net_observe net =
  ( Network.states net,
    Network.activations net,
    Network.transitions net,
    observe_nv (Network.graph net) )

let test_checkpoint_restore_exact () =
  (* run to a checkpoint, continue under a fault, restore, replay: the
     second continuation must be bit-identical to the first *)
  let g = graph () in
  let net = Network.init ~rng:(Prng.create ~seed:3) g (sp 20) in
  for _ = 1 to 3 do
    ignore (Network.sync_step net)
  done;
  let cp = Network.checkpoint net in
  let at_cp = net_observe net in
  let continue () =
    Graph.remove_node g 6;
    for _ = 1 to 4 do
      ignore (Network.sync_step net)
    done;
    net_observe net
  in
  let first = continue () in
  Network.restore net cp;
  Alcotest.(check bool) "restore lands exactly on the checkpoint" true
    (net_observe net = at_cp);
  Alcotest.(check bool) "replay after restore is bit-identical" true
    (continue () = first)

let test_checkpoint_restore_dirty () =
  (* same exactness with change-driven stepping: the dirty set is part
     of the checkpoint, and graph mutations are reconciled the same way
     the runner does it *)
  let g = graph () in
  let net = Network.init ~rng:(Prng.create ~seed:4) g (sp 20) in
  for _ = 1 to 2 do
    ignore (Network.sync_step_dirty net)
  done;
  let cp = Network.checkpoint net in
  let continue () =
    Network.mark_dirty_around net 2;
    Graph.remove_node g 2;
    Network.ack_graph_mutations net;
    let flags = List.init 6 (fun _ -> Network.sync_step_dirty net) in
    (flags, net_observe net)
  in
  let first = continue () in
  Network.restore net cp;
  Alcotest.(check bool) "dirty replay is bit-identical" true
    (continue () = first)

(* --- Runner recovery policies ---------------------------------------- *)

(* A livelock by construction: every node flips 0 <-> 1 forever, so the
   per-round transition count never reaches a new minimum. *)
let blinker =
  Fssga.deterministic ~name:"blinker"
    ~init:(fun _ _ -> 0)
    ~step:(fun ~self _view -> 1 - self)

let blinker_net () =
  Network.init ~rng:(Prng.create ~seed:5) (graph ()) blinker

let test_watchdog_give_up () =
  let o =
    Runner.run
      ~recovery:(Runner.recovery ~patience:5 Runner.Give_up)
      ~max_rounds:1_000 (blinker_net ())
  in
  Alcotest.(check bool) "gave up" true o.Runner.gave_up;
  Alcotest.(check int) "one recovery step" 1 o.Runner.recoveries;
  Alcotest.(check bool) "long before the budget" true (o.Runner.rounds < 100)

let test_watchdog_retry_then_give_up () =
  (* deterministic replay without reseeding reproduces the livelock, so
     both rollback attempts burn out and the run gives up *)
  let o =
    Runner.run
      ~recovery:
        (Runner.recovery ~patience:5 ~checkpoint_every:4
           (Runner.Retry { attempts = 2; reseed = false }))
      ~max_rounds:1_000 (blinker_net ())
  in
  Alcotest.(check bool) "gave up after retries" true o.Runner.gave_up;
  Alcotest.(check int) "two rollbacks + one give-up" 3 o.Runner.recoveries

let test_watchdog_degrade_then_give_up () =
  let o =
    Runner.run
      ~recovery:(Runner.recovery ~patience:5 Runner.Degrade)
      ~max_rounds:1_000 (blinker_net ())
  in
  Alcotest.(check bool) "gave up after degrading" true o.Runner.gave_up;
  Alcotest.(check int) "degrade + give-up" 2 o.Runner.recoveries

let test_watchdog_spares_converging_runs () =
  let net = Network.init ~rng:(Prng.create ~seed:6) (graph ()) (sp 20) in
  let o =
    Runner.run
      ~recovery:(Runner.recovery ~patience:3 Runner.Give_up)
      ~max_rounds:1_000 net
  in
  Alcotest.(check bool) "quiesced" true o.Runner.quiesced;
  Alcotest.(check bool) "no false positive" false o.Runner.gave_up;
  Alcotest.(check int) "no recovery steps" 0 o.Runner.recoveries

(* --- fault accounting and crash-restart ------------------------------ *)

let test_faults_noop_counted () =
  let g = graph () in
  let net = Network.init ~rng:(Prng.create ~seed:7) g (sp 20) in
  let buf = Buffer.create 256 in
  let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
  let faults =
    [
      { Fault.at_round = 1; action = Fault.Kill_node 3 };
      { Fault.at_round = 2; action = Fault.Kill_node 3 } (* already dead *);
      { Fault.at_round = 2; action = Fault.Kill_edge (0, 0) } (* no such edge *);
    ]
  in
  let o = Runner.run ~faults ~recorder ~max_rounds:100 net in
  Obs.Recorder.close recorder;
  Alcotest.(check int) "one effective fault" 1 o.Runner.faults_applied;
  Alcotest.(check int) "two no-ops" 2 o.Runner.faults_noop;
  let trace = Buffer.contents buf in
  let count_substring sub s =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length s then acc
      else if String.sub s i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "no-ops surface in the trace" 2
    (count_substring "fault_noop" trace)

let test_crash_restart_semantics () =
  (* node dead for the crash round plus its downtime, then back in the
     start state; the final fixpoint matches the fault-free run because
     the graph ends up whole again *)
  let v = 6 in
  let downtime = 2 in
  let liveness = ref [] in
  let run faults =
    let g = graph () in
    let net = Network.init ~rng:(Prng.create ~seed:8) g (sp 20) in
    let o =
      Runner.run ~faults ~max_rounds:200
        ~on_round:(fun ~round net ->
          if faults <> [] && round <= 8 then
            liveness :=
              (round, Graph.is_live_node (Network.graph net) v) :: !liveness)
        net
    in
    (o, Network.states net)
  in
  let faults =
    [ { Fault.at_round = 2; action = Fault.Crash_restart { node = v; downtime } } ]
  in
  let o, faulted_states = run faults in
  let _, clean_states = run [] in
  Alcotest.(check int) "crash counted once" 1 o.Runner.faults_applied;
  List.iter
    (fun (round, alive) ->
      let expect = not (round >= 2 && round <= 2 + downtime) in
      Alcotest.(check bool)
        (Printf.sprintf "liveness at round %d" round)
        expect alive)
    !liveness;
  Alcotest.(check bool) "fixpoint matches the fault-free run" true
    (faulted_states = clean_states)

let test_corrupt_state_heals () =
  let g = graph () in
  let net = Network.init ~rng:(Prng.create ~seed:9) g (sp 20) in
  let faults =
    [
      { Fault.at_round = 3; action = Fault.Corrupt_state 5 };
      { Fault.at_round = 3; action = Fault.Corrupt_state 9 };
    ]
  in
  let o =
    Runner.run ~faults
      ~corrupt:(fun _rng net v ->
        { (Network.state net v) with A.Shortest_paths.label = 20 })
      ~max_rounds:200 net
  in
  Alcotest.(check int) "both corruptions landed" 2 o.Runner.faults_applied;
  Alcotest.(check bool) "quiesced" true o.Runner.quiesced;
  let dist = Analysis.distances g ~sources:[ 0 ] in
  Alcotest.(check bool) "labels healed to true distances" true
    (List.for_all
       (fun (v, s) -> A.Shortest_paths.label s = min 20 dist.(v))
       (Network.states net))

(* --- chaos processes and the spec grammar ---------------------------- *)

let test_chaos_actions_pure () =
  let g = graph () in
  let c =
    Chaos.create ~seed:42
      [
        Chaos.Burst
          { at = 2; width = 3; count = 2; kind = Chaos.Corrupt;
            target = Chaos.Uniform };
        Chaos.Bernoulli
          { p = 0.5; kind = Chaos.Kill_edge; target = Chaos.High_degree };
      ]
  in
  let due round = Chaos.actions_due c ~round g in
  Alcotest.(check bool) "same round, same actions" true (due 3 = due 3);
  Alcotest.(check bool) "nothing before round 1" true (due 0 = [])

let test_chaos_horizon () =
  let burst at =
    Chaos.Burst
      { at; width = 2; count = 1; kind = Chaos.Corrupt; target = Chaos.Uniform }
  in
  let bounded = Chaos.create ~seed:1 [ burst 3; burst 7 ] in
  Alcotest.(check (option int)) "last burst round" (Some 8)
    (Chaos.horizon bounded);
  Alcotest.(check bool) "exhausted past the horizon" true
    (Chaos.exhausted bounded ~round:8);
  Alcotest.(check bool) "not exhausted before" false
    (Chaos.exhausted bounded ~round:7);
  let unbounded =
    Chaos.create ~seed:1
      [ burst 3; Chaos.Periodic { every = 5; phase = 0; kind = Chaos.Kill_node;
                                  target = Chaos.Uniform } ]
  in
  Alcotest.(check (option int)) "periodic is unbounded" None
    (Chaos.horizon unbounded)

let test_chaos_spec_parses () =
  match
    Chaos.of_spec ~seed:1
      "burst:at=5:count=3:kind=corrupt;bernoulli:p=0.02:kind=crash:downtime=4:target=degree"
  with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Chaos.processes c with
      | [ Chaos.Burst { at = 5; count = 3; kind = Chaos.Corrupt; _ };
          Chaos.Bernoulli
            { p = 0.02; kind = Chaos.Crash { downtime = 4 };
              target = Chaos.High_degree } ] ->
          ()
      | _ -> Alcotest.fail "unexpected parse")

let test_chaos_spec_rejects () =
  let bad spec =
    match Chaos.of_spec ~seed:1 spec with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" spec)
    | Error _ -> ()
  in
  bad "";
  bad "tsunami:p=0.5";
  bad "burst:at=banana";
  bad "burst:frequency=3";
  bad "bernoulli:kind=meteor"

let test_mttr_split () =
  (* the paper's separation, at test scale: min+1 relaxation recovers
     from a corruption burst, the census OR does not *)
  let chaos =
    [
      Chaos.Burst
        { at = 3; width = 1; count = 1; kind = Chaos.Corrupt;
          target = Chaos.Uniform };
    ]
  in
  let graph () =
    Gen.random_connected (Prng.create ~seed:21) ~n:16 ~extra_edges:8
  in
  let sp_verdict =
    Stab.mttr ~rng:(Prng.create ~seed:1) ~automaton:(sp 16) ~graph ~chaos
      ~corrupt:(fun rng net v ->
        { (Network.state net v) with A.Shortest_paths.label = Prng.int rng 17 })
      ~legitimate:(fun net ->
        let g = Network.graph net in
        let dist = Analysis.distances g ~sources:[ 0 ] in
        List.for_all
          (fun (v, s) -> A.Shortest_paths.label s = min 16 dist.(v))
          (Network.states net))
      ~trials:3 ~max_rounds:300 ()
  in
  Alcotest.(check int) "shortest paths recovers" 3 sp_verdict.Stab.recovered;
  let k = A.Census.recommended_k 16 in
  let census_verdict =
    Stab.mttr ~rng:(Prng.create ~seed:2) ~automaton:(A.Census.automaton ~k)
      ~graph ~chaos
      ~corrupt:(fun _rng _net _v -> A.Census.of_bits ~k ((1 lsl k) - 1))
      ~legitimate:(fun net ->
        match
          List.filter_map (fun (_, s) -> A.Census.estimate s)
            (Network.states net)
        with
        | [] -> false
        | es -> List.for_all (fun e -> e < 8. *. 16.) es)
      ~trials:3 ~max_rounds:300 ()
  in
  Alcotest.(check int) "census sticks" 0 census_verdict.Stab.recovered

let test_mttr_rejects_unbounded_chaos () =
  let chaos =
    [ Chaos.Bernoulli { p = 0.1; kind = Chaos.Corrupt; target = Chaos.Uniform } ]
  in
  Alcotest.check_raises "unbounded chaos rejected"
    (Invalid_argument "Stabilization.mttr: chaos must be bounded (bursts)")
    (fun () ->
      ignore
        (Stab.mttr ~rng:(Prng.create ~seed:1) ~automaton:(sp 16)
           ~graph:(fun () ->
             Gen.random_connected (Prng.create ~seed:21) ~n:16 ~extra_edges:8)
           ~chaos
           ~legitimate:(fun _ -> true)
           ~trials:1 ~max_rounds:10 ()
          : _ Stab.verdict))

let suite =
  [
    Alcotest.test_case "graph snapshot/restore is exact" `Quick
      test_graph_snapshot_restore;
    Alcotest.test_case "graph restore rejects foreign snapshots" `Quick
      test_graph_restore_wrong_graph;
    Alcotest.test_case "revive_node round-trips" `Quick
      test_revive_node_roundtrip;
    Alcotest.test_case "revive_node respects dead edges" `Quick
      test_revive_respects_dead_edges;
    Alcotest.test_case "network checkpoint/restore replays exactly" `Quick
      test_checkpoint_restore_exact;
    Alcotest.test_case "checkpoint/restore with dirty stepping" `Quick
      test_checkpoint_restore_dirty;
    Alcotest.test_case "watchdog: give up on livelock" `Quick
      test_watchdog_give_up;
    Alcotest.test_case "watchdog: retry then give up" `Quick
      test_watchdog_retry_then_give_up;
    Alcotest.test_case "watchdog: degrade then give up" `Quick
      test_watchdog_degrade_then_give_up;
    Alcotest.test_case "watchdog spares converging runs" `Quick
      test_watchdog_spares_converging_runs;
    Alcotest.test_case "no-op faults counted and traced" `Quick
      test_faults_noop_counted;
    Alcotest.test_case "crash-restart timing and fixpoint" `Quick
      test_crash_restart_semantics;
    Alcotest.test_case "corrupted labels heal" `Quick test_corrupt_state_heals;
    Alcotest.test_case "chaos actions are pure per round" `Quick
      test_chaos_actions_pure;
    Alcotest.test_case "chaos horizon" `Quick test_chaos_horizon;
    Alcotest.test_case "chaos spec grammar accepts" `Quick
      test_chaos_spec_parses;
    Alcotest.test_case "chaos spec grammar rejects" `Quick
      test_chaos_spec_rejects;
    Alcotest.test_case "MTTR separates the paper's algorithms" `Quick
      test_mttr_split;
    Alcotest.test_case "MTTR rejects unbounded chaos" `Quick
      test_mttr_rejects_unbounded_chaos;
  ]
