(* Differential tests for the divide-and-conquer SM backend
   (arXiv:0708.0580): the summary monoid and segment tree must agree
   with the direct interpreters on random programs, point updates must
   agree with fresh rebuilds, parallel builds must be bit-identical at
   every domain count, and the engine's three census backends
   (seq / tree / incr) must produce identical runs — including under
   faults and checkpoint/restore. *)

module Sm = Symnet_core.Sm
module Sm_compile = Symnet_core.Sm_compile
module Sm_monoid = Symnet_core.Sm_monoid
module Sm_segtree = Symnet_core.Sm_segtree
module Sm_digest = Symnet_core.Sm_digest
module Prng = Symnet_prng.Prng
module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Network = Symnet_engine.Network
module Domain_pool = Symnet_engine.Domain_pool
module A = Symnet_algorithms

(* --- random programs -------------------------------------------------- *)

(* Any random sequential program works: the transition-map monoid is
   exact for the left-to-right order whether or not the program is SM. *)
let random_sequential rng : Sm.sequential =
  let q = 1 + Prng.int rng 4 in
  let w = 1 + Prng.int rng 5 in
  let r = 1 + Prng.int rng 3 in
  {
    sq_q_size = q;
    sq_w_size = w;
    sq_w0 = Prng.int rng w;
    sq_p = Array.init w (fun _ -> Array.init q (fun _ -> Prng.int rng w));
    sq_beta = Array.init w (fun _ -> Prng.int rng r);
    sq_r_size = r;
  }

let random_mt rng : Sm.mod_thresh =
  let q = 1 + Prng.int rng 3 in
  Sm_compile.random_mod_thresh rng ~q_size:q ~r_size:(2 + Prng.int rng 3)
    ~clauses:(1 + Prng.int rng 4) ~max_mod:4 ~max_thresh:4 ~depth:2

let random_inputs rng ~q_size ~len = List.init len (fun _ -> Prng.int rng q_size)

(* --- segtree vs direct interpreters ----------------------------------- *)

let prop_segtree_matches_sequential =
  QCheck.Test.make ~name:"segtree eval = run_sequential on random programs"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let p = random_sequential rng in
      let m = Sm_monoid.of_sequential p in
      let len = 1 + Prng.int rng 40 in
      let inputs = random_inputs rng ~q_size:p.Sm.sq_q_size ~len in
      Sm_segtree.eval m (Array.of_list inputs) = Sm.run_sequential p inputs)

let prop_segtree_matches_mod_thresh =
  QCheck.Test.make ~name:"segtree eval = run_mod_thresh on random programs"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let p = random_mt rng in
      let m = Sm_monoid.of_mod_thresh p in
      let len = 1 + Prng.int rng 40 in
      let inputs = random_inputs rng ~q_size:p.Sm.mt_q_size ~len in
      Sm_segtree.eval m (Array.of_list inputs) = Sm.run_mod_thresh p inputs)

(* --- point updates vs fresh rebuilds ---------------------------------- *)

let prop_updates_match_rebuild =
  QCheck.Test.make
    ~name:"random update sequences = fresh rebuild (seq and mod-thresh)"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let check m q_size direct =
        let len = 1 + Prng.int rng 30 in
        let arr = Array.init len (fun _ -> Prng.int rng q_size) in
        let t = Sm_segtree.build m (Array.copy arr) in
        let ok = ref true in
        for _ = 1 to 25 do
          let j = Prng.int rng len in
          let sym = Prng.int rng q_size in
          arr.(j) <- sym;
          Sm_segtree.set t j sym;
          if Sm_segtree.result t <> direct (Array.to_list arr) then ok := false
        done;
        !ok && Sm_segtree.result t = Sm_segtree.eval m arr
      in
      let p = random_sequential rng in
      let mt = random_mt rng in
      check (Sm_monoid.of_sequential p) p.Sm.sq_q_size (Sm.run_sequential p)
      && check (Sm_monoid.of_mod_thresh mt) mt.Sm.mt_q_size
           (Sm.run_mod_thresh mt))

(* Symbol -1 marks an absent input: its leaf is the identity, so the
   result equals evaluating the array with that element removed. *)
let prop_absent_symbol_is_identity =
  QCheck.Test.make ~name:"-1 leaves = removing the element" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let p = random_sequential rng in
      let m = Sm_monoid.of_sequential p in
      let len = 2 + Prng.int rng 20 in
      let arr = Array.init len (fun _ -> Prng.int rng p.Sm.sq_q_size) in
      let j = Prng.int rng len in
      let t = Sm_segtree.build m (Array.copy arr) in
      Sm_segtree.set t j (-1);
      let rest =
        List.filteri (fun i _ -> i <> j) (Array.to_list arr)
      in
      Sm_segtree.result t = Sm.run_sequential p rest)

(* --- parallel builds -------------------------------------------------- *)

let test_parallel_build_bit_identical () =
  let rng = Prng.create ~seed:42 in
  let p = random_sequential rng in
  let m = Sm_monoid.of_sequential p in
  (* Large enough that the tree's parallel cutoff is crossed. *)
  let n = 5000 in
  let arr = Array.init n (fun _ -> Prng.int rng p.Sm.sq_q_size) in
  let expected = Sm_segtree.eval m arr in
  List.iter
    (fun domains ->
      let pool = Domain_pool.create domains in
      let par ~n f = Domain_pool.run pool ~n (fun _slot lo hi -> f lo hi) in
      let t = Sm_segtree.build ~par m arr in
      Alcotest.(check int)
        (Printf.sprintf "parallel build, %d domains" domains)
        expected (Sm_segtree.result t);
      Domain_pool.shutdown pool)
    [ 1; 2; 4 ]

(* --- engine backends: seq vs tree vs incr ----------------------------- *)

type obs = { flags : bool list; states : (int * int option) list; acts : int }

let census_states net =
  List.map (fun (v, s) -> (v, A.Census.bits s)) (Network.states net)

(* Drive [rounds] synchronous census rounds through one backend, with an
   optional fault (kill a node before round [fault_at]) injected
   identically across backends. *)
let drive ~backend ~graph ~seed ~rounds ?fault_at () =
  let g = graph () in
  let k = 10 in
  let rng = Prng.create ~seed in
  let net = Network.init ~rng g (Sm_digest.to_fssga (A.Census.digest ~k)) in
  let dg = Network.digest_of net (A.Census.digest ~k) in
  let step r =
    (match fault_at with
    | Some at when r = at -> Graph.remove_node g (Graph.original_size g / 2)
    | _ -> ());
    match backend with
    | `Seq -> Network.sync_step net
    | `Tree -> Network.digest_step ~mode:`Tree dg
    | `Incr -> Network.digest_step ~mode:`Incr dg
  in
  let flags = List.init rounds step in
  { flags; states = census_states net; acts = Network.activations net }

let check_backends_agree name ~graph ~seed ~rounds ?fault_at () =
  let seq = drive ~backend:`Seq ~graph ~seed ~rounds ?fault_at () in
  let tree = drive ~backend:`Tree ~graph ~seed ~rounds ?fault_at () in
  let incr = drive ~backend:`Incr ~graph ~seed ~rounds ?fault_at () in
  List.iter
    (fun (bname, b) ->
      Alcotest.(check (list bool))
        (name ^ ": " ^ bname ^ " change flags")
        seq.flags b.flags;
      Alcotest.(check int) (name ^ ": " ^ bname ^ " activations") seq.acts b.acts;
      Alcotest.(check (list (pair int (option int))))
        (name ^ ": " ^ bname ^ " states")
        seq.states b.states)
    [ ("tree", tree); ("incr", incr) ]

let test_backends_bit_identical () =
  check_backends_agree "random"
    ~graph:(fun () ->
      Gen.random_connected (Prng.create ~seed:7) ~n:60 ~extra_edges:40)
    ~seed:3 ~rounds:12 ();
  check_backends_agree "star" ~graph:(fun () -> Gen.star 40) ~seed:5 ~rounds:8 ();
  (* Isolated-ish nodes: a path has degree-1 ends; also run a 2-node
     graph where one kill leaves an isolated node. *)
  check_backends_agree "path" ~graph:(fun () -> Gen.path 17) ~seed:9 ~rounds:10 ()

let test_backends_bit_identical_under_faults () =
  check_backends_agree "faulted random"
    ~graph:(fun () ->
      Gen.random_connected (Prng.create ~seed:21) ~n:50 ~extra_edges:30)
    ~seed:13 ~rounds:12 ~fault_at:4 ();
  check_backends_agree "faulted star (hub survives)"
    ~graph:(fun () -> Gen.star 30)
    ~seed:17 ~rounds:10 ~fault_at:3 ()

(* Checkpoint/restore through the digest cache: restoring rewinds
   states, graph and rngs; the cache must resynchronize (encode sweep +
   version check) so the replay is bit-identical. *)
let test_backends_checkpoint_restore () =
  let k = 10 in
  let mk seed =
    let g = Gen.random_connected (Prng.create ~seed:33) ~n:40 ~extra_edges:25 in
    let net = Network.init ~rng:(Prng.create ~seed) g (Sm_digest.to_fssga (A.Census.digest ~k)) in
    (net, Network.digest_of net (A.Census.digest ~k), g)
  in
  let net, dg, g = mk 11 in
  for _ = 1 to 3 do ignore (Network.digest_step dg) done;
  let cp = Network.checkpoint net in
  Graph.remove_node g 7;
  let run3 () = List.init 3 (fun _ -> Network.digest_step dg) in
  let flags_a = run3 () in
  let states_a = census_states net in
  Network.restore net cp;
  Graph.remove_node g 7;
  let flags_b = run3 () in
  let states_b = census_states net in
  Alcotest.(check (list bool)) "replayed change flags" flags_a flags_b;
  Alcotest.(check (list (pair int (option int)))) "replayed states" states_a
    states_b;
  (* And the replay matches the seq backend given the same history. *)
  let net2, _, g2 = mk 11 in
  for _ = 1 to 3 do ignore (Network.sync_step net2) done;
  Graph.remove_node g2 7;
  let flags_c = List.init 3 (fun _ -> Network.sync_step net2) in
  let states_c = census_states net2 in
  Alcotest.(check (list bool)) "seq flags" flags_c flags_a;
  Alcotest.(check (list (pair int (option int)))) "seq states" states_c states_a

(* Parallel tree builds inside the engine: same run at every pool size. *)
let test_digest_step_pool_bit_identical () =
  let k = 12 in
  let run domains =
    let g = Gen.star 3000 in
    let net =
      Network.init ~rng:(Prng.create ~seed:23) g
        (Sm_digest.to_fssga (A.Census.digest ~k))
    in
    let dg = Network.digest_of net (A.Census.digest ~k) in
    let pool = Domain_pool.create domains in
    let flags = List.init 5 (fun _ -> Network.digest_step ~pool dg) in
    Domain_pool.shutdown pool;
    (flags, census_states net)
  in
  let base = run 1 in
  List.iter
    (fun d ->
      let got = run d in
      Alcotest.(check bool)
        (Printf.sprintf "pool size %d identical" d)
        true (base = got))
    [ 2; 4 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_segtree_matches_sequential;
    QCheck_alcotest.to_alcotest prop_segtree_matches_mod_thresh;
    QCheck_alcotest.to_alcotest prop_updates_match_rebuild;
    QCheck_alcotest.to_alcotest prop_absent_symbol_is_identity;
    Alcotest.test_case "parallel segtree build bit-identical" `Quick
      test_parallel_build_bit_identical;
    Alcotest.test_case "census backends bit-identical" `Quick
      test_backends_bit_identical;
    Alcotest.test_case "census backends bit-identical under faults" `Quick
      test_backends_bit_identical_under_faults;
    Alcotest.test_case "digest cache survives checkpoint/restore" `Quick
      test_backends_checkpoint_restore;
    Alcotest.test_case "digest_step bit-identical at every pool size" `Quick
      test_digest_step_pool_bit_identical;
  ]
