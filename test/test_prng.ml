module Prng = Symnet_prng.Prng

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_divergence () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check int) "nearby seeds diverge" 0 !same

let test_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_bits_matches_bits64 () =
  (* [bits] is the low 63 bits of the same stream step as [bits64]; the
     two must stay interleavable without drift. *)
  let a = Prng.create ~seed:31 and b = Prng.create ~seed:31 in
  for i = 1 to 200 do
    let v64 = Prng.bits64 a in
    let v = Prng.bits b in
    Alcotest.(check int)
      (Printf.sprintf "draw %d: low 63 bits" i)
      (Int64.to_int v64) v
  done;
  (* and the streams are still aligned after mixing the two entry points *)
  ignore (Prng.bits a);
  ignore (Prng.bits64 b);
  Alcotest.(check int64) "still aligned" (Prng.bits64 a) (Prng.bits64 b)

let test_bool_matches_low_bit () =
  (* [bool] must keep matching the historic Int64 low-bit draw. *)
  let a = Prng.create ~seed:37 and b = Prng.create ~seed:37 in
  for i = 1 to 200 do
    Alcotest.(check bool)
      (Printf.sprintf "draw %d" i)
      (Int64.logand (Prng.bits64 a) 1L = 1L)
      (Prng.bool b)
  done

let test_split_independent () =
  let a = Prng.create ~seed:7 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let test_split_key_pure () =
  (* split_key must not advance the parent and must replay per key *)
  let g = Prng.create ~seed:41 in
  ignore (Prng.bits64 g);
  let probe = Prng.copy g in
  let c1 = Prng.split_key g ~key:5 in
  let c2 = Prng.split_key g ~key:5 in
  Alcotest.(check int64) "parent unadvanced" (Prng.bits64 probe) (Prng.bits64 g);
  Alcotest.(check int64) "same key replays" (Prng.bits64 c1) (Prng.bits64 c2)

let test_split_key_distinct () =
  let g = Prng.create ~seed:43 in
  let streams = List.init 16 (fun k -> Prng.split_key g ~key:k) in
  let firsts = List.map Prng.bits64 streams in
  Alcotest.(check int)
    "16 keys, 16 distinct first draws" 16
    (List.length (List.sort_uniq compare firsts))

let test_split_key_zero_is_split () =
  (* key 0 coincides with the stream the next [split] would return *)
  let a = Prng.create ~seed:47 and b = Prng.create ~seed:47 in
  let keyed = Prng.split_key a ~key:0 in
  let child = Prng.split b in
  for i = 1 to 16 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Prng.bits64 child) (Prng.bits64 keyed)
  done

let test_int_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_int_uniformity () =
  let g = Prng.create ~seed:11 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Prng.int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 10))
    counts

let test_float_range () =
  let g = Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_bool_balance () =
  let g = Prng.create ~seed:13 in
  let heads = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Prng.bool g then incr heads
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fair coin (%d)" !heads)
    true
    (abs (!heads - (trials / 2)) < trials / 50)

let test_bernoulli () =
  let g = Prng.create ~seed:17 in
  let hits = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Prng.bernoulli g ~p:0.25 then incr hits
  done;
  let observed = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.25 (got %.3f)" observed)
    true
    (abs_float (observed -. 0.25) < 0.01)

let test_geometric_bit () =
  let g = Prng.create ~seed:19 in
  let counts = Array.make 5 0 in
  let nones = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    match Prng.geometric_bit g ~max:4 with
    | Some i -> counts.(i) <- counts.(i) + 1
    | None -> incr nones
  done;
  (* P(i) = 2^-i for i in 1..4, None with 2^-4 *)
  List.iter
    (fun i ->
      let expected = float_of_int trials *. (2. ** float_of_int (-i)) in
      let got = float_of_int counts.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "P(%d) ~ 2^-%d (got %.0f want %.0f)" i i got expected)
        true
        (abs_float (got -. expected) < (expected /. 10.) +. 50.))
    [ 1; 2; 3; 4 ];
  let expected_none = float_of_int trials /. 16. in
  Alcotest.(check bool)
    "P(None) ~ 2^-4" true
    (abs_float (float_of_int !nones -. expected_none) < expected_none /. 5.)

let test_permutation () =
  let g = Prng.create ~seed:23 in
  let p = Prng.permutation g 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_uniform_small () =
  (* All 6 permutations of 3 elements should appear roughly equally. *)
  let g = Prng.create ~seed:29 in
  let tbl = Hashtbl.create 6 in
  let trials = 60_000 in
  for _ = 1 to trials do
    let a = [| 0; 1; 2 |] in
    Prng.shuffle g a;
    let key = Array.to_list a in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  Alcotest.(check int) "all 6 orders occur" 6 (Hashtbl.length tbl);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "near uniform" true (abs (c - 10_000) < 1_000))
    tbl

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed divergence" `Quick test_seed_divergence;
    Alcotest.test_case "copy replays" `Quick test_copy;
    Alcotest.test_case "bits matches bits64" `Quick test_bits_matches_bits64;
    Alcotest.test_case "bool matches low bit" `Quick test_bool_matches_low_bit;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split_key purity" `Quick test_split_key_pure;
    Alcotest.test_case "split_key distinct keys" `Quick test_split_key_distinct;
    Alcotest.test_case "split_key 0 is next split" `Quick
      test_split_key_zero_is_split;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bool balance" `Slow test_bool_balance;
    Alcotest.test_case "bernoulli" `Slow test_bernoulli;
    Alcotest.test_case "geometric bit distribution" `Slow test_geometric_bit;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "shuffle uniformity" `Slow test_shuffle_uniform_small;
  ]
