(* Differential tests for the sharded runtime: partitioning the graph
   into K shards with cross-shard message queues must be bit-identical
   to the flat engine at every (shards, domains) combination — change
   flags, final states, activation/transition counts and telemetry —
   for deterministic and probabilistic automata, naive and dirty
   stepping, under chaos, across checkpoint/restore, through partition
   rebalances and external state writes. *)

module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Sharded = Symnet_engine.Sharded_network
module Runner = Symnet_engine.Runner
module Domain_pool = Symnet_engine.Domain_pool
module Chaos = Symnet_engine.Chaos
module Obs = Symnet_obs
module A = Symnet_algorithms

let shard_counts = [ 1; 2; 3; 7 ]
let domain_counts = [ 1; 2; 4 ]

let graph_of (n, extra) =
  Gen.random_connected (Prng.create ~seed:(n + (131 * extra))) ~n ~extra_edges:extra

let sp_automaton n = A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n
let census_automaton n = A.Census.automaton ~k:(A.Census.recommended_k n)

(* Flat reference: [rounds] synchronous rounds, everything observable. *)
let drive_flat ~rounds ~dirty net =
  let step net =
    if dirty then Network.sync_step_dirty net else Network.sync_step net
  in
  let flags = List.init rounds (fun _ -> step net) in
  (flags, Network.states net, Network.activations net, Network.transitions net)

let drive_sharded ?pool ~shards ~rounds ~dirty net =
  Network.set_par_cutoff net 0;
  let sh = Sharded.create ~shards net in
  let flags = List.init rounds (fun _ -> Sharded.step ?pool ~dirty sh) in
  (flags, Network.states net, Network.activations net, Network.transitions net)

let check_sharded_equals_flat ~mk ~rounds ~dirty =
  let flat = drive_flat ~rounds ~dirty (mk ()) in
  List.for_all
    (fun shards ->
      List.for_all
        (fun domains ->
          Domain_pool.with_pool ~domains (fun pool ->
              drive_sharded ~pool ~shards ~rounds ~dirty (mk ()) = flat))
        domain_counts)
    shard_counts

let case = QCheck.(triple (int_range 2 60) (int_range 0 60) (int_range 1 12))

let prop_deterministic_naive =
  QCheck.Test.make ~name:"sharded = flat (deterministic, naive)" ~count:20 case
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      check_sharded_equals_flat ~rounds ~dirty:false ~mk:(fun () ->
          Network.init ~rng:(Prng.create ~seed:1) (Graph.copy g) (sp_automaton n)))

let prop_deterministic_dirty =
  QCheck.Test.make ~name:"sharded = flat (deterministic, dirty)" ~count:20 case
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      check_sharded_equals_flat ~rounds ~dirty:true ~mk:(fun () ->
          Network.init ~rng:(Prng.create ~seed:2) (Graph.copy g) (sp_automaton n)))

let prop_probabilistic =
  QCheck.Test.make ~name:"sharded = flat (probabilistic census)" ~count:20 case
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      check_sharded_equals_flat ~rounds ~dirty:false ~mk:(fun () ->
          Network.init ~rng:(Prng.create ~seed:3) (Graph.copy g)
            (census_automaton n)))

(* Full Runner.run under chaos — corruption, crash-restart, stochastic
   edge kills — with a recorder attached: the outcome and the complete
   event trace must match the flat run byte for byte. *)
let prop_runner_chaos_trace_bytes =
  QCheck.Test.make ~name:"runner sharded = flat (chaos, trace bytes)"
    ~count:10
    QCheck.(triple (int_range 3 40) (int_range 0 40) (int_range 1 1000))
    (fun (n, extra, seed) ->
      let g = graph_of (n, extra) in
      let run ~domains ~shards =
        let g = Graph.copy g in
        let chaos =
          Chaos.create ~seed
            [
              Chaos.Burst
                { at = 2; width = 2; count = 1; kind = Chaos.Corrupt;
                  target = Chaos.Uniform };
              Chaos.Burst
                { at = 3; width = 1; count = 1;
                  kind = Chaos.Crash { downtime = 2 };
                  target = Chaos.High_degree };
              Chaos.Bernoulli
                { p = 0.1; kind = Chaos.Kill_edge; target = Chaos.Uniform };
            ]
        in
        let buf = Buffer.create 1024 in
        let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
        let net = Network.init ~rng:(Prng.create ~seed) g (sp_automaton n) in
        Network.set_par_cutoff net 0;
        let o = Runner.run ~chaos ~max_rounds:30 ~recorder ~domains ?shards net in
        Obs.Recorder.close recorder;
        ( o.Runner.rounds,
          o.Runner.activations,
          o.Runner.transitions,
          o.Runner.faults_applied,
          o.Runner.faults_noop,
          Network.states net,
          Buffer.contents buf )
      in
      let flat = run ~domains:1 ~shards:None in
      List.for_all
        (fun shards ->
          List.for_all
            (fun domains -> run ~domains ~shards:(Some shards) = flat)
            domain_counts)
        shard_counts)

(* Checkpoint/restore through the sharded wrapper: a restored run must
   replay exactly the rounds the original run produced. *)
let prop_checkpoint_restore =
  QCheck.Test.make ~name:"sharded checkpoint/restore replays exactly"
    ~count:20
    QCheck.(quad (int_range 3 50) (int_range 0 50) (int_range 1 8) (int_range 1 8))
    (fun (n, extra, before, after) ->
      let g = graph_of (n, extra) in
      List.for_all
        (fun shards ->
          let net =
            Network.init ~rng:(Prng.create ~seed:5) (Graph.copy g)
              (census_automaton n)
          in
          Network.set_par_cutoff net 0;
          let sh = Sharded.create ~shards net in
          for _ = 1 to before do
            ignore (Sharded.step sh)
          done;
          let cp = Sharded.checkpoint sh in
          let tail () =
            List.init after (fun _ -> Sharded.step sh)
          in
          let first = (tail (), Network.states net) in
          Sharded.restore sh cp;
          let second = (tail (), Network.states net) in
          first = second)
        shard_counts)

(* Runner-level recovery rollback (Retry policy) restores the partition
   coherently: the run must match the flat engine's under an identical
   forced-rollback scenario. *)
let test_runner_retry_matches_flat () =
  let g = Gen.random_connected (Prng.create ~seed:11) ~n:60 ~extra_edges:40 in
  let run shards =
    let g = Graph.copy g in
    let net = Network.init ~rng:(Prng.create ~seed:11) g (census_automaton 60) in
    Network.set_par_cutoff net 0;
    let recovery =
      Runner.recovery ~patience:5 ~checkpoint_every:3
        (Runner.Retry { attempts = 2; reseed = false })
    in
    let o = Runner.run ~recovery ~max_rounds:40 ?shards net in
    ( o.Runner.rounds, o.Runner.activations, o.Runner.transitions,
      o.Runner.recoveries, o.Runner.gave_up, Network.states net )
  in
  let flat = run None in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "retry at %d shards" k)
        true
        (run (Some k) = flat))
    shard_counts

(* Rebalancing mid-run only moves the work assignment: states stay
   identical to the flat run even when a recut fires every round under
   heavily skewed load (a corner of the graph kept hot by faults). *)
let prop_rebalance_preserves_results =
  QCheck.Test.make ~name:"rebalance preserves bit-identity" ~count:20
    QCheck.(triple (int_range 6 50) (int_range 0 50) (int_range 2 10))
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      let flat =
        drive_flat ~rounds ~dirty:true
          (Network.init ~rng:(Prng.create ~seed:4) (Graph.copy g)
             (sp_automaton n))
      in
      List.for_all
        (fun shards ->
          let net =
            Network.init ~rng:(Prng.create ~seed:4) (Graph.copy g)
              (sp_automaton n)
          in
          Network.set_par_cutoff net 0;
          let sh = Sharded.create ~rebalance_every:1 ~imbalance:1.01 ~shards net in
          let flags =
            List.init rounds (fun i ->
                (* an explicit recut every other round, on top of the
                   policy, exercises migration paths deterministically *)
                if i mod 2 = 1 then Sharded.rebalance sh;
                Sharded.step ~dirty:true sh)
          in
          (flags, Network.states net, Network.activations net,
           Network.transitions net)
          = flat)
        shard_counts)

(* External writes between rounds (set_state behind the wrapper's back)
   are picked up through the epoch counter: the sharded run must follow
   the flat run through the same mid-run writes. *)
let prop_external_writes_resync =
  QCheck.Test.make ~name:"external set_state resyncs shards" ~count:20
    QCheck.(triple (int_range 3 40) (int_range 0 40) (int_range 2 8))
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      let poke net i =
        (* rewrite some node's state to the automaton's init mid-run *)
        let v = i * 7 mod n in
        if Graph.is_live_node (Network.graph net) v then
          Network.set_state net v
            ((Network.automaton net).Symnet_core.Fssga.init (Network.graph net) v)
      in
      let flat =
        let net =
          Network.init ~rng:(Prng.create ~seed:6) (Graph.copy g) (sp_automaton n)
        in
        let flags =
          List.init rounds (fun i ->
              poke net i;
              Network.sync_step net)
        in
        (flags, Network.states net)
      in
      List.for_all
        (fun shards ->
          let net =
            Network.init ~rng:(Prng.create ~seed:6) (Graph.copy g)
              (sp_automaton n)
          in
          Network.set_par_cutoff net 0;
          let sh = Sharded.create ~shards net in
          let flags =
            List.init rounds (fun i ->
                poke net i;
                Sharded.step sh)
          in
          (flags, Network.states net) = flat)
        shard_counts)

(* Streamed construction: a grid built through Graph.of_adjacency runs
   the engine identically to the list-built grid (same neighbour sets),
   and the circulant stream round-trips its own degree oracle. *)
let test_streamed_grid_equivalent () =
  let rows = 9 and cols = 13 in
  let run g =
    let n = rows * cols in
    let net = Network.init ~rng:(Prng.create ~seed:8) g (sp_automaton n) in
    let sh = Sharded.create ~shards:3 net in
    let flags = List.init 30 (fun _ -> Sharded.step sh) in
    (flags, Network.states net)
  in
  Alcotest.(check bool)
    "streamed grid = list grid" true
    (run (Gen.graph_of_stream (Gen.grid_stream ~rows ~cols))
    = run (Gen.grid ~rows ~cols))

let test_circulant_stream_valid () =
  let g = Gen.graph_of_stream (Gen.circulant_stream ~n:30 ~offsets:[ 1; 3; 15 ]) in
  Alcotest.(check int) "node count" 30 (Graph.node_count g);
  (* degree 5: ±1, ±3, and the antipodal 15 contributes one *)
  Alcotest.(check int) "uniform degree" 5 (Graph.degree g 0);
  Alcotest.(check int) "edge count" (30 * 5 / 2) (Graph.edge_count g);
  (* and the engine accepts it sharded *)
  let net = Network.init ~rng:(Prng.create ~seed:9) g (census_automaton 30) in
  let sh = Sharded.create ~shards:7 net in
  for _ = 1 to 10 do
    ignore (Sharded.step sh)
  done;
  Alcotest.(check bool) "messages flowed" true (Sharded.messages sh > 0)

let test_shard_stats_cover_graph () =
  let g = Gen.grid ~rows:10 ~cols:10 in
  let net = Network.init ~rng:(Prng.create ~seed:10) g (sp_automaton 100) in
  let sh = Sharded.create ~shards:4 net in
  ignore (Sharded.step sh);
  let stats = Sharded.shard_stats sh in
  Alcotest.(check int) "four shards" 4 (Array.length stats);
  let covered =
    Array.for_all
      (fun s -> s.Sharded.ss_hi >= s.Sharded.ss_lo && s.Sharded.ss_ghosts >= 0)
      stats
  in
  Alcotest.(check bool) "ranges well formed" true covered;
  Alcotest.(check int) "ranges partition the nodes" 100
    (Array.fold_left (fun a s -> a + (s.Sharded.ss_hi - s.Sharded.ss_lo)) 0 stats);
  Alcotest.(check bool) "exchange share in [0,1]" true
    (let s = Sharded.exchange_share sh in
     s >= 0. && s <= 1.)

let test_create_validates () =
  let g = Gen.path 5 in
  let net = Network.init ~rng:(Prng.create ~seed:1) g (sp_automaton 5) in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Sharded_network.create: shards >= 1 required")
    (fun () -> ignore (Sharded.create ~shards:0 net));
  let net2 = Network.init ~rng:(Prng.create ~seed:1) (Gen.path 5) (sp_automaton 5) in
  Alcotest.check_raises "asynchronous scheduler rejected"
    (Invalid_argument "Runner.run: shards requires the synchronous scheduler")
    (fun () ->
      ignore
        (Runner.run ~scheduler:Symnet_engine.Scheduler.Rotor ~shards:2
           ~max_rounds:5 net2))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_deterministic_naive;
    QCheck_alcotest.to_alcotest prop_deterministic_dirty;
    QCheck_alcotest.to_alcotest prop_probabilistic;
    QCheck_alcotest.to_alcotest prop_runner_chaos_trace_bytes;
    QCheck_alcotest.to_alcotest prop_checkpoint_restore;
    QCheck_alcotest.to_alcotest prop_rebalance_preserves_results;
    QCheck_alcotest.to_alcotest prop_external_writes_resync;
    Alcotest.test_case "runner retry rollback matches flat" `Quick
      test_runner_retry_matches_flat;
    Alcotest.test_case "streamed grid = list grid" `Quick
      test_streamed_grid_equivalent;
    Alcotest.test_case "circulant stream validates" `Quick
      test_circulant_stream_valid;
    Alcotest.test_case "shard stats cover the graph" `Quick
      test_shard_stats_cover_graph;
    Alcotest.test_case "creation validation" `Quick test_create_validates;
  ]
