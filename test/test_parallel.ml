(* Differential tests for the parallel synchronous engine: sharding a
   round over a domain pool must be bit-identical to the sequential
   engine — per-round change flags, final states, activation counts,
   round counts and telemetry — at every domain count, for deterministic
   and probabilistic automata, with and without dirty-set scheduling,
   and under mid-run faults. *)

module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Runner = Symnet_engine.Runner
module Domain_pool = Symnet_engine.Domain_pool
module Fault = Symnet_engine.Fault
module Chaos = Symnet_engine.Chaos
module Obs = Symnet_obs
module A = Symnet_algorithms

let domain_counts = [ 1; 2; 4 ]

let graph_of (n, extra) =
  Gen.random_connected (Prng.create ~seed:(n + (131 * extra))) ~n ~extra_edges:extra

let sp_automaton n = A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n
let census_automaton n = A.Census.automaton ~k:(A.Census.recommended_k n)

(* Drive [rounds] synchronous rounds and capture everything observable:
   the change flag of every round, the final states, and the activation
   count. *)
let drive ?pool ~rounds ~dirty net =
  (* tiny graphs: defeat the auto-sequential cutoff so the parallel code
     path is actually exercised *)
  Network.set_par_cutoff net 0;
  let step net =
    match (pool, dirty) with
    | None, false -> Network.sync_step net
    | None, true -> Network.sync_step_dirty net
    | Some pool, false -> Network.sync_step_par ~pool net
    | Some pool, true -> Network.sync_step_dirty_par ~pool net
  in
  let flags = List.init rounds (fun _ -> step net) in
  (flags, Network.states net, Network.activations net)

let check_par_equals_seq ~mk ~rounds ~dirty =
  let seq = drive ~rounds ~dirty (mk ()) in
  List.for_all
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          drive ~pool ~rounds ~dirty (mk ()) = seq))
    domain_counts

let case = QCheck.(triple (int_range 2 60) (int_range 0 60) (int_range 1 12))

let prop_deterministic_naive =
  QCheck.Test.make ~name:"parallel = sequential (deterministic, naive)"
    ~count:30 case
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      check_par_equals_seq ~rounds ~dirty:false ~mk:(fun () ->
          Network.init ~rng:(Prng.create ~seed:1) (Graph.copy g) (sp_automaton n)))

let prop_deterministic_dirty =
  QCheck.Test.make ~name:"parallel = sequential (deterministic, dirty)"
    ~count:30 case
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      check_par_equals_seq ~rounds ~dirty:true ~mk:(fun () ->
          Network.init ~rng:(Prng.create ~seed:2) (Graph.copy g) (sp_automaton n)))

let prop_probabilistic_naive =
  QCheck.Test.make ~name:"parallel = sequential (probabilistic census)"
    ~count:30 case
    (fun (n, extra, rounds) ->
      let g = graph_of (n, extra) in
      check_par_equals_seq ~rounds ~dirty:false ~mk:(fun () ->
          Network.init ~rng:(Prng.create ~seed:3) (Graph.copy g)
            (census_automaton n)))

(* Full Runner.run with a mid-run fault schedule: outcome and final
   states must agree between ~domains:1 and every other count, for a
   deterministic and a probabilistic automaton. *)
let runner_case mk_aut (n, extra, seed) =
  let g = graph_of (n, extra) in
  let run domains =
    let g = Graph.copy g in
    let faults =
      Fault.random_edge_faults (Prng.create ~seed) g ~count:3 ~max_round:10
        ~keep_connected:false
    in
    let net = Network.init ~rng:(Prng.create ~seed) g (mk_aut n) in
    Network.set_par_cutoff net 0;
    let o = Runner.run ~faults ~max_rounds:200 ~domains net in
    (o.Runner.rounds, o.Runner.activations, o.Runner.quiesced, Network.states net)
  in
  let seq = run 1 in
  List.for_all (fun domains -> run domains = seq) domain_counts

let prop_runner_faults_deterministic =
  QCheck.Test.make ~name:"runner parallel = sequential (faults, shortest paths)"
    ~count:20
    QCheck.(triple (int_range 3 50) (int_range 0 50) (int_range 1 1000))
    (runner_case sp_automaton)

let prop_runner_faults_probabilistic =
  QCheck.Test.make ~name:"runner parallel = sequential (faults, census)"
    ~count:20
    QCheck.(triple (int_range 3 50) (int_range 0 50) (int_range 1 1000))
    (runner_case census_automaton)

(* Chaos processes — corruption, crash-restart, stochastic edge kills —
   must keep the run bit-identical at every domain count: the outcome
   and the full event trace, byte for byte. *)
let prop_runner_chaos_bit_identical =
  QCheck.Test.make ~name:"runner parallel = sequential (chaos, trace bytes)"
    ~count:15
    QCheck.(triple (int_range 3 40) (int_range 0 40) (int_range 1 1000))
    (fun (n, extra, seed) ->
      let g = graph_of (n, extra) in
      let run domains =
        let g = Graph.copy g in
        let chaos =
          Chaos.create ~seed
            [
              Chaos.Burst
                { at = 2; width = 2; count = 1; kind = Chaos.Corrupt;
                  target = Chaos.Uniform };
              Chaos.Burst
                { at = 3; width = 1; count = 1;
                  kind = Chaos.Crash { downtime = 2 };
                  target = Chaos.High_degree };
              Chaos.Bernoulli
                { p = 0.1; kind = Chaos.Kill_edge; target = Chaos.Uniform };
            ]
        in
        let buf = Buffer.create 1024 in
        let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
        let net = Network.init ~rng:(Prng.create ~seed) g (sp_automaton n) in
        Network.set_par_cutoff net 0;
        let o = Runner.run ~chaos ~max_rounds:30 ~recorder ~domains net in
        Obs.Recorder.close recorder;
        ( o.Runner.rounds,
          o.Runner.activations,
          o.Runner.transitions,
          o.Runner.faults_applied,
          o.Runner.faults_noop,
          Network.states net,
          Buffer.contents buf )
      in
      let seq = run 1 in
      List.for_all (fun domains -> run domains = seq) domain_counts)

(* With a recorder attached the commit phase serialises, so the whole
   metrics snapshot — counters, activation histograms, everything — must
   be identical too. *)
let test_recorder_metrics_identical () =
  let run domains =
    let g = Gen.random_connected (Prng.create ~seed:7) ~n:80 ~extra_edges:60 in
    let net =
      Network.init ~rng:(Prng.create ~seed:7) g (census_automaton 80)
    in
    Network.set_par_cutoff net 0;
    let recorder = Obs.Recorder.create () in
    let o = Runner.run ~max_rounds:100 ~recorder ~domains net in
    Obs.Recorder.close recorder;
    o.Runner.metrics
  in
  let seq = run 1 in
  Alcotest.(check bool) "snapshot at 2 domains" true (run 2 = seq);
  Alcotest.(check bool) "snapshot at 4 domains" true (run 4 = seq)

(* A long-lived pool reused across many rounds and networks keeps the
   equivalence (the pool carries no per-network state). *)
let test_pool_reuse () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      let ok = ref true in
      for seed = 1 to 5 do
        let g =
          Gen.random_connected (Prng.create ~seed) ~n:40 ~extra_edges:30
        in
        let mk () =
          Network.init ~rng:(Prng.create ~seed) (Graph.copy g)
            (census_automaton 40)
        in
        let seq = drive ~rounds:8 ~dirty:false (mk ()) in
        if drive ~pool ~rounds:8 ~dirty:false (mk ()) <> seq then ok := false
      done;
      Alcotest.(check bool) "5 networks on one pool" true !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_deterministic_naive;
    QCheck_alcotest.to_alcotest prop_deterministic_dirty;
    QCheck_alcotest.to_alcotest prop_probabilistic_naive;
    QCheck_alcotest.to_alcotest prop_runner_faults_deterministic;
    QCheck_alcotest.to_alcotest prop_runner_faults_probabilistic;
    QCheck_alcotest.to_alcotest prop_runner_chaos_bit_identical;
    Alcotest.test_case "recorder metrics identical" `Quick
      test_recorder_metrics_identical;
    Alcotest.test_case "pool reuse across networks" `Quick test_pool_reuse;
  ]
