(* Adversarial link layer: spec grammar round-trips, determinism of
   link-faulted runs across domain counts and through checkpoint
   restore, reliable-exchange convergence to the fault-free fixed point,
   cut-channel targeting, the Degrade_links recovery policy, and the
   link runtime's counters. *)

module Gen = Symnet_graph.Gen
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Sharded = Symnet_engine.Sharded_network
module Runner = Symnet_engine.Runner
module Chaos = Symnet_engine.Chaos
module Link = Symnet_engine.Link
module Obs = Symnet_obs
module A = Symnet_algorithms

let graph_of (n, extra) =
  Gen.random_connected (Prng.create ~seed:(n + (131 * extra))) ~n ~extra_edges:extra

let sp_automaton n = A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n

let graph_arb =
  QCheck.make
    ~print:(fun (n, e) -> Printf.sprintf "(n=%d, extra=%d)" n e)
    QCheck.Gen.(pair (int_range 8 40) (int_range 0 20))

(* A representative mixed link spec: lossy, duplicating, reordering and
   delaying — with the reliable exchange making the losses recoverable. *)
let mixed_link_spec =
  "link=drop:p=0.15:reliable=true:cap=8:backoff=1;link=dup:p=0.1;link=reorder:p=0.2:window=3;link=delay:p=0.1:rounds=2"

let chaos_of_spec ~seed spec =
  match Chaos.of_spec ~seed spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "chaos spec rejected: %s" e

(* Run with a buffer-sink recorder so the full event stream is part of
   the identity being compared. *)
let drive ~seed ~spec ~shards ~domains (n, extra) =
  let g = graph_of (n, extra) in
  let net = Network.init ~rng:(Prng.create ~seed:(seed + 7)) g (sp_automaton n) in
  Network.set_par_cutoff net 0;
  let buf = Buffer.create 4096 in
  let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
  let chaos = chaos_of_spec ~seed spec in
  let outcome =
    Runner.run ~chaos ~max_rounds:200 ~recorder ~domains ~shards net
  in
  ( outcome.Runner.rounds,
    outcome.Runner.activations,
    outcome.Runner.transitions,
    outcome.Runner.quiesced,
    Network.states net,
    Buffer.contents buf )

(* Link faults are a pure function of (seed, channel, round, message
   index), so a faulted sharded run must be bit-identical — states,
   outcome and the whole trace byte stream — at every domain count. *)
let prop_link_trace_bytes_across_domains =
  QCheck.Test.make ~count:12 ~name:"link faults: trace bytes domain-independent"
    graph_arb (fun gspec ->
      let base = drive ~seed:0x5eed ~spec:mixed_link_spec ~shards:3 ~domains:1 gspec in
      List.for_all
        (fun domains ->
          drive ~seed:0x5eed ~spec:mixed_link_spec ~shards:3 ~domains gspec = base)
        [ 1; 2 ])

(* Under reliable exchange every dropped/delayed ghost update is
   eventually delivered in order, so a self-stabilising computation
   converges to the same fixed point as a fault-free flat run — the
   paper's §5.2 robustness claim, at every (shards, domains) pair. *)
let prop_reliable_drop_matches_flat =
  QCheck.Test.make ~count:10 ~name:"reliable exchange: converges to fault-free fixed point"
    graph_arb (fun ((n, _extra) as gspec) ->
      let flat =
        let g = graph_of gspec in
        let net = Network.init ~rng:(Prng.create ~seed:3) g (sp_automaton n) in
        let (_ : Runner.outcome) = Runner.run ~max_rounds:200 net in
        Network.states net
      in
      List.for_all
        (fun (shards, domains) ->
          let g = graph_of gspec in
          let net = Network.init ~rng:(Prng.create ~seed:3) g (sp_automaton n) in
          Network.set_par_cutoff net 0;
          let chaos =
            chaos_of_spec ~seed:0xcafe
              "link=drop:p=0.05:reliable=true;link=delay:p=0.1:rounds=2"
          in
          let o = Runner.run ~chaos ~max_rounds:400 ~shards ~domains net in
          o.Runner.quiesced && Network.states net = flat)
        [ (1, 1); (3, 1); (3, 2) ])

(* Rollback stability: the link round counter is part of the sharded
   checkpoint, so replaying rounds after a restore re-derives the same
   fault draws and lands on the same states. *)
let prop_checkpoint_restore_deterministic =
  QCheck.Test.make ~count:10 ~name:"link faults: checkpoint/restore replays identically"
    graph_arb (fun ((n, _) as gspec) ->
      let g = graph_of gspec in
      let net = Network.init ~rng:(Prng.create ~seed:11) g (sp_automaton n) in
      Network.set_par_cutoff net 0;
      let sh = Sharded.create ~shards:3 net in
      Sharded.configure_link sh ~seed:0x11ca
        {
          Link.faults =
            [
              { Link.kind = Link.Drop; p = 0.2; target = Link.All_channels };
              {
                Link.kind = Link.Delay { rounds = 2 };
                p = 0.15;
                target = Link.All_channels;
              };
            ];
          reliable = true;
          cap = 8;
          backoff = 1;
        };
      for _ = 1 to 4 do
        ignore (Sharded.step sh)
      done;
      let cp = Sharded.checkpoint sh in
      let steps_after () =
        let cont = List.init 6 (fun _ -> Sharded.step sh) in
        (cont, Network.states net)
      in
      (* Run ahead (so the restore is a genuine rewind), then compare
         two independent replays from the same checkpoint: the link
         round counter is rewound with the restore, so both replays
         draw the same faults and land on the same states. *)
      ignore (steps_after ());
      Sharded.restore sh cp;
      let replay1 = steps_after () in
      Sharded.restore sh cp;
      let replay2 = steps_after () in
      replay1 = replay2)

(* --- spec grammar ---------------------------------------------------- *)

let test_spec_roundtrip () =
  let specs =
    [
      "link=drop:p=0.05:reliable=true";
      "link=dup:p=0.1,target=cut,cap=4";
      "link=reorder:window=4:p=0.1;link=delay:rounds=3:p=0.2:backoff=2";
      "bernoulli:p=0.02:kind=corrupt;link=drop:p=0.01:reliable=true";
      "burst:at=5:width=2:count=3:kind=kill_node:target=degree";
    ]
  in
  List.iter
    (fun s ->
      match Chaos.of_spec ~seed:1 s with
      | Error e -> Alcotest.failf "spec %S rejected: %s" s e
      | Ok c -> (
          let canon = Chaos.spec_of c in
          match Chaos.of_spec ~seed:1 canon with
          | Error e ->
              Alcotest.failf "canonical form %S of %S rejected: %s" canon s e
          | Ok c2 ->
              (* spec_of is a fixed point of of_spec ∘ spec_of *)
              Alcotest.(check string)
                (Printf.sprintf "round-trip of %S" s)
                canon (Chaos.spec_of c2)))
    specs

let check_error_mentions ~what spec needles =
  match Chaos.of_spec ~seed:1 spec with
  | Ok _ -> Alcotest.failf "%s: spec %S unexpectedly accepted" what spec
  | Error e ->
      List.iter
        (fun needle ->
          let mem =
            let ln = String.length needle and le = String.length e in
            let rec go i = i + ln <= le && (String.sub e i ln = needle || go (i + 1)) in
            go 0
          in
          if not mem then
            Alcotest.failf "%s: error %S does not mention %S" what e needle)
        needles

let test_unknown_key_errors_list_grammar () =
  (* Unknown keys and kinds must name the offender and spell out the
     accepted grammar so the CLI user can self-correct. *)
  check_error_mentions ~what:"unknown link key" "link=drop:p=0.1:bogus=3"
    [ "bogus"; "link=" ];
  check_error_mentions ~what:"unknown link kind" "link=teleport:p=0.1"
    [ "teleport"; "drop" ];
  check_error_mentions ~what:"unknown process key" "bernoulli:pp=1"
    [ "pp"; "valid keys" ];
  check_error_mentions ~what:"unknown process name" "gremlins:p=0.1"
    [ "gremlins" ]

(* --- cut-channel targeting ------------------------------------------- *)

let dropped_on ~g ~n ~shards spec =
  let net = Network.init ~rng:(Prng.create ~seed:5) g (sp_automaton n) in
  Network.set_par_cutoff net 0;
  let sh = Sharded.create ~shards net in
  Sharded.configure_link sh ~seed:0xbeef spec;
  for _ = 1 to 30 do
    ignore (Sharded.step sh)
  done;
  match Sharded.link_runtime sh with
  | None -> Alcotest.fail "link runtime not configured"
  | Some lk -> (Link.messages_dropped lk, Link.delivered lk)

let cut_spec =
  {
    Link.faults = [ { Link.kind = Link.Drop; p = 1.0; target = Link.Cut_channels } ];
    reliable = false;
    cap = 0;
    backoff = 1;
  }

let test_cut_target_hits_bridge_channels () =
  (* Every edge of a path is a bridge, so every cross-shard channel is a
     cut channel: p=1 drop on target=cut kills all of them. *)
  let n = 24 in
  let dropped, _ = dropped_on ~g:(Gen.path n) ~n ~shards:4 cut_spec in
  Alcotest.(check bool) "path: bridge channels faulted" true (dropped > 0)

let test_cut_target_spares_bridgeless_graphs () =
  (* A complete graph has no bridges, so target=cut must fault nothing —
     traffic flows untouched even at p=1. *)
  let n = 12 in
  let dropped, delivered = dropped_on ~g:(Gen.complete n) ~n ~shards:3 cut_spec in
  Alcotest.(check int) "clique: nothing dropped" 0 dropped;
  Alcotest.(check bool) "clique: traffic flowed" true (delivered > 0)

(* --- Degrade_links recovery ------------------------------------------ *)

let test_degrade_links_recovery () =
  (* Periodic corruption keeps the network transitioning every round
     while p=1 long-delay swallows all cross-shard traffic: the watchdog
     sees progress without new minima, trips, and Degrade_links
     quarantines the stalled channels and resyncs. *)
  let n = 24 in
  let g = graph_of (n, 10) in
  let net = Network.init ~rng:(Prng.create ~seed:21) g (sp_automaton n) in
  Network.set_par_cutoff net 0;
  let buf = Buffer.create 1024 in
  let recorder = Obs.Recorder.create ~sink:(Obs.Events.buffer buf) () in
  let chaos =
    chaos_of_spec ~seed:0xdead
      "periodic:every=1:kind=corrupt;link=delay:p=1.0:rounds=500"
  in
  let recovery = Runner.recovery ~patience:5 Runner.Degrade_links in
  let o =
    Runner.run ~chaos ~recovery ~max_rounds:60 ~recorder ~shards:2 net
  in
  Alcotest.(check bool) "recovery policy fired" true (o.Runner.recoveries >= 1);
  let trace = Buffer.contents buf in
  let mentions needle =
    let ln = String.length needle and lt = String.length trace in
    let rec go i = i + ln <= lt && (String.sub trace i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "degrade_links recovery recorded" true
    (mentions "degrade_links")

let test_degrade_links_without_link_gives_up () =
  (* Without a configured link runtime the policy degrades to Give_up
     rather than spinning. *)
  let n = 20 in
  let g = graph_of (n, 8) in
  let net = Network.init ~rng:(Prng.create ~seed:23) g (sp_automaton n) in
  let chaos = chaos_of_spec ~seed:0xfeed "periodic:every=1:kind=corrupt" in
  let recovery = Runner.recovery ~patience:5 Runner.Degrade_links in
  let o = Runner.run ~chaos ~recovery ~max_rounds:60 ~shards:2 net in
  Alcotest.(check bool) "gave up" true o.Runner.gave_up

(* --- counters -------------------------------------------------------- *)

let test_link_counters () =
  let n = 30 in
  let g = Gen.path n in
  let net = Network.init ~rng:(Prng.create ~seed:9) g (sp_automaton n) in
  Network.set_par_cutoff net 0;
  let sh = Sharded.create ~shards:3 net in
  Sharded.configure_link sh ~seed:0xabcd
    {
      Link.faults =
        [
          { Link.kind = Link.Drop; p = 0.5; target = Link.All_channels };
          { Link.kind = Link.Duplicate; p = 0.3; target = Link.All_channels };
        ];
      reliable = true;
      cap = 4;
      backoff = 1;
    };
  let budget = ref 400 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := Sharded.step sh;
    decr budget
  done;
  let lk =
    match Sharded.link_runtime sh with
    | Some lk -> lk
    | None -> Alcotest.fail "link runtime missing"
  in
  Alcotest.(check bool) "drops counted" true (Link.messages_dropped lk > 0);
  Alcotest.(check bool) "duplicates counted" true (Link.duplicated lk > 0);
  Alcotest.(check bool) "retries counted" true (Link.retries lk > 0);
  Alcotest.(check bool) "deliveries counted" true (Link.delivered lk > 0);
  (* Reliable exchange drained everything: the run quiesced with no
     traffic left in flight. *)
  Alcotest.(check bool) "quiesced with link idle" true
    ((not !continue_) && not (Link.busy lk));
  (* ... and converged to the true shortest paths despite the losses. *)
  let flat_net =
    Network.init ~rng:(Prng.create ~seed:9) (Gen.path n) (sp_automaton n)
  in
  let (_ : Runner.outcome) = Runner.run ~max_rounds:200 flat_net in
  Alcotest.(check bool) "states match fault-free flat" true
    (Network.states net = Network.states flat_net)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_link_trace_bytes_across_domains;
    QCheck_alcotest.to_alcotest prop_reliable_drop_matches_flat;
    QCheck_alcotest.to_alcotest prop_checkpoint_restore_deterministic;
    Alcotest.test_case "spec round-trips" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec errors list grammar" `Quick
      test_unknown_key_errors_list_grammar;
    Alcotest.test_case "cut target hits bridge channels" `Quick
      test_cut_target_hits_bridge_channels;
    Alcotest.test_case "cut target spares bridgeless graphs" `Quick
      test_cut_target_spares_bridgeless_graphs;
    Alcotest.test_case "degrade_links recovery" `Quick
      test_degrade_links_recovery;
    Alcotest.test_case "degrade_links without link gives up" `Quick
      test_degrade_links_without_link_gives_up;
    Alcotest.test_case "link counters" `Quick test_link_counters;
  ]
