let () =
  Alcotest.run "symnet"
    [
      ("prng", Test_prng.suite);
      ("graph", Test_graph.suite);
      ("csr-equiv", Test_csr_equiv.suite);
      ("view", Test_view.suite);
      ("sm", Test_sm.suite);
      ("engine", Test_engine.suite);
      ("parallel", Test_parallel.suite);
      ("sharded", Test_sharded.suite);
      ("census", Test_census.suite);
      ("shortest-paths", Test_shortest_paths.suite);
      ("two-colouring", Test_two_colouring.suite);
      ("bridges", Test_bridges.suite);
      ("synchronizer", Test_synchronizer.suite);
      ("bfs", Test_bfs.suite);
      ("random-walk", Test_random_walk.suite);
      ("traversal", Test_traversal.suite);
      ("greedy-tourist", Test_greedy_tourist.suite);
      ("election", Test_election.suite);
      ("iwa", Test_iwa.suite);
      ("sensitivity", Test_sensitivity.suite);
      ("firing-squad", Test_firing_squad.suite);
      ("semilattice", Test_semilattice.suite);
      ("sm-tape", Test_sm_tape.suite);
      ("fssga-formal", Test_fssga_formal.suite);
      ("election-invariants", Test_election_invariants.suite);
      ("stabilization", Test_stabilization.suite);
      ("message-passing", Test_message_passing.suite);
      ("sm-bounded", Test_sm_bounded.suite);
      ("spec-trace", Test_spec_trace.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("chaos", Test_chaos.suite);
      ("profiling", Test_profiling.suite);
      ("sm-monoid", Test_sm_monoid.suite);
    ]
