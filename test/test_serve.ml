(* The serve stack: wire framing, protocol codec round-trips, view
   snapshot isolation, the daemon end-to-end (single-threaded, ticking
   the event loop by hand), run ≡ start/step/finish equivalence of the
   resumable runner sessions, and the Graph.version rewind-collision
   regression — a version-keyed digest cache must never return a stale
   entry across checkpoint → mutate → restore → mutate, which is
   exactly what a rewinding restore used to break. *)

module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Runner = Symnet_engine.Runner
module Domain_pool = Symnet_engine.Domain_pool
module Fssga = Symnet_core.Fssga
module Jsonx = Symnet_obs.Jsonx
module Wire = Symnet_serve.Wire
module Protocol = Symnet_serve.Protocol
module View = Symnet_serve.View
module Daemon = Symnet_serve.Daemon
module A = Symnet_algorithms

let graph () = Gen.random_connected (Prng.create ~seed:11) ~n:20 ~extra_edges:12
let sp n = A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:n

(* --- wire framing ----------------------------------------------------- *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payloads = [ ""; "x"; String.make 70_000 'q'; "{\"op\":\"status\"}" ] in
  List.iter (fun p -> Wire.write_frame a p) payloads;
  List.iter
    (fun p ->
      Alcotest.(check (option string)) "frame round-trips" (Some p)
        (Wire.read_frame b))
    payloads;
  Unix.close a;
  (* EOF exactly at a frame boundary is a clean close *)
  Alcotest.(check (option string)) "clean EOF" None (Wire.read_frame b);
  Unix.close b

let test_wire_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* a length prefix promising 10 bytes, then a hangup after 3 *)
  let buf = Bytes.create 7 in
  Bytes.set_int32_be buf 0 10l;
  Bytes.blit_string "abc" 0 buf 4 3;
  let _ = Unix.write a buf 0 7 in
  Unix.close a;
  Alcotest.check_raises "mid-frame EOF raises" Wire.Closed (fun () ->
      ignore (Wire.read_frame b));
  Unix.close b

(* --- protocol codec --------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Query Protocol.Status;
      Protocol.Query (Protocol.Node_state [ 0; 3; 17 ]);
      Protocol.Query
        (Protocol.Distances { sources = [ 0; 2 ]; targets = [ 5; 1 ] });
      Protocol.Query Protocol.Census;
      Protocol.Query Protocol.Components;
      Protocol.Query (Protocol.Component_of 9);
      Protocol.Query Protocol.Bridges;
      Protocol.Query Protocol.Telemetry;
      Protocol.Mutate (Protocol.Kill_node 4);
      Protocol.Mutate (Protocol.Kill_edge (2, 7));
      Protocol.Mutate (Protocol.Revive_node 4);
      Protocol.Mutate (Protocol.Corrupt 1);
      Protocol.Batch
        [
          Protocol.Query Protocol.Status;
          Protocol.Mutate (Protocol.Kill_node 0);
          Protocol.Query Protocol.Census;
        ];
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode (Protocol.encode r) with
      | Ok r' ->
          Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.failf "decode error: %s" e)
    reqs

let test_protocol_rejects_garbage () =
  List.iter
    (fun s ->
      match Protocol.decode s with
      | Ok _ -> Alcotest.failf "decoded garbage %S" s
      | Error _ -> ())
    [ "GET / HTTP/1.1"; "{}"; "{\"op\":\"no-such-op\"}"; "[1,2]"; "" ]

(* --- view snapshots ---------------------------------------------------- *)

let test_view_isolation () =
  let g = graph () in
  let net = Network.init ~rng:(Prng.create ~seed:3) g (sp 20) in
  for _ = 1 to 3 do
    ignore (Network.sync_step net)
  done;
  let v = View.take ~round:3 net in
  Alcotest.(check bool) "fresh right after take" true (View.fresh v net);
  let d_before = View.distances v ~sources:[ 0 ] in
  (* mutate the resident network behind the view's back *)
  Graph.remove_node g 5;
  Alcotest.(check bool) "stale after a graph mutation" false
    (View.fresh v net);
  Alcotest.(check bool) "view's graph copy still shows the node live" true
    (Graph.is_live_node (View.graph v) 5);
  Alcotest.(check bool) "memoised distances unaffected by the mutation" true
    (View.distances v ~sources:[ 0 ] == d_before);
  let v' = View.take ~round:4 net in
  Alcotest.(check bool) "new view sees the mutation" false
    (Graph.is_live_node (View.graph v') 5);
  Alcotest.(check bool) "stamps differ across the mutation" true
    (View.version v' > View.version v)

(* --- resumable sessions ------------------------------------------------ *)

(* The probabilistic census draws from the network rng on every
   activation, so state equality after the run certifies that the
   session path performed the same operations in the same order. *)
let census_net seed =
  let g = Gen.random_connected (Prng.create ~seed:41) ~n:30 ~extra_edges:20 in
  Network.init ~rng:(Prng.create ~seed) g
    (A.Census.automaton ~k:(A.Census.recommended_k 30))

let observe net =
  (Network.states net, Network.activations net, Network.transitions net)

let test_session_equals_run () =
  let via_run = Network.init ~rng:(Prng.create ~seed:3) (graph ()) (sp 20) in
  let o_run = Runner.run ~dirty:true ~max_rounds:50 via_run in
  let via_session =
    Network.init ~rng:(Prng.create ~seed:3) (graph ()) (sp 20)
  in
  let s = Runner.start ~dirty:true ~max_rounds:50 via_session in
  (* interleave manual steps with finish: same loop, different driver *)
  ignore (Runner.step s);
  ignore (Runner.step s);
  let o_sess = Runner.finish s in
  Alcotest.(check bool) "outcomes identical" true (o_run = o_sess);
  Alcotest.(check bool) "observables identical" true
    (observe via_run = observe via_session);
  Alcotest.(check bool) "session_result repeats the outcome" true
    (Runner.session_result s = Some o_sess)

let test_session_equals_run_probabilistic () =
  let a = census_net 7 in
  let o_run = Runner.run ~max_rounds:40 a in
  let b = census_net 7 in
  let s = Runner.start ~max_rounds:40 b in
  let o_sess = Runner.finish s in
  Alcotest.(check bool) "probabilistic outcomes identical" true
    (o_run = o_sess);
  Alcotest.(check bool) "probabilistic rng draws identical" true
    (observe a = observe b)

(* --- the rewind-collision regression ----------------------------------- *)

(* A version-keyed digest cache over the graph observables — the pattern
   the dirty-set reconciler, the engine's digest cache, and the serve
   views all rely on.  The contract: equal version ⇒ bit-identical
   graph, so a cache hit may skip recomputation. *)
let liveness_digest g =
  ( List.init (Graph.original_size g) (Graph.is_live_node g),
    List.sort compare (List.map (fun e -> e.Graph.id) (Graph.edges g)) )

let cached_digest cache g =
  let v = Graph.version g in
  match Hashtbl.find_opt cache v with
  | Some d -> d
  | None ->
      let d = liveness_digest g in
      Hashtbl.add cache v d;
      d

let pick_live_edge g k =
  let es = Graph.edges g in
  (List.nth es (k mod List.length es)).Graph.id

(* checkpoint → remove A → digest → restore → remove B → the digest must
   resync.  A restore that rewound the version counter made the post-B
   version collide with the cached post-A version, so the cache returned
   A's liveness for B's graph. *)
let test_rewind_collision_graph () =
  let g = graph () in
  let cache = Hashtbl.create 8 in
  ignore (cached_digest cache g);
  let snap = Graph.snapshot g in
  Graph.remove_edge g (pick_live_edge g 0);
  ignore (cached_digest cache g);
  Graph.restore g snap;
  Graph.remove_edge g (pick_live_edge g 1);
  Alcotest.(check bool) "digest resyncs after restore + second removal" true
    (cached_digest cache g = liveness_digest g)

let test_rewind_collision_network () =
  let g = graph () in
  let net = Network.init ~rng:(Prng.create ~seed:5) g (sp 20) in
  for _ = 1 to 2 do
    ignore (Network.sync_step net)
  done;
  let cache = Hashtbl.create 8 in
  ignore (cached_digest cache g);
  let cp = Network.checkpoint net in
  Graph.remove_edge g (pick_live_edge g 0);
  ignore (cached_digest cache g);
  Network.restore net cp;
  Graph.remove_edge g (pick_live_edge g 1);
  Alcotest.(check bool)
    "digest resyncs across Network.restore + second removal" true
    (cached_digest cache g = liveness_digest g);
  (* and the network keeps stepping correctly after the mutation *)
  ignore (Network.sync_step net)

(* The same collision through the engine's real incremental digest
   cache (keyed on [Graph.version]): checkpoint → remove node A →
   digest step (caches A's adjacency) → restore → remove node B.  With
   a rewinding restore the post-B version equalled the cached post-A
   version, so the cache trusted A's trees for B's graph; the sequence
   must instead match a cache-free seq run of the identical history. *)
let test_rewind_collision_digest () =
  let module Sm_digest = Symnet_core.Sm_digest in
  let k = 10 in
  let dgst = A.Census.digest ~k in
  let mk seed =
    let g =
      Gen.random_connected (Prng.create ~seed:33) ~n:40 ~extra_edges:25
    in
    let net =
      Network.init ~rng:(Prng.create ~seed) g (Sm_digest.to_fssga dgst)
    in
    (net, g)
  in
  let drive net g step =
    for _ = 1 to 3 do
      ignore (step ())
    done;
    let cp = Network.checkpoint net in
    Graph.remove_node g 7;
    ignore (step ());
    Network.restore net cp;
    Graph.remove_node g 9;
    let flags = List.init 3 (fun _ -> step ()) in
    (flags, Network.states net)
  in
  let net_d, g_d = mk 11 in
  let dg = Network.digest_of net_d dgst in
  let via_digest = drive net_d g_d (fun () -> Network.digest_step dg) in
  let net_s, g_s = mk 11 in
  let via_seq = drive net_s g_s (fun () -> Network.sync_step net_s) in
  Alcotest.(check bool) "digest cache resyncs after rollback divergence" true
    (via_digest = via_seq)

(* --- qcheck: version-keyed consumers never go stale -------------------- *)

(* Random interleavings of rounds, mutations, checkpoints and restores,
   driven through runner sessions at every (shards, domains) config the
   engine supports.  After every operation the version-keyed cache is
   probed: a hit whose digest differs from the live graph is a stale
   read — the collision the strictly monotonic version makes
   impossible. *)
type op = Rounds of int | Kill_node of int | Kill_edge of int | Cp | Restore

let op_of (k, arg) =
  match k mod 5 with
  | 0 -> Rounds ((arg mod 3) + 1)
  | 1 -> Kill_node (arg mod 14)
  | 2 -> Kill_edge arg
  | 3 -> Cp
  | _ -> Restore

let prop_version_keyed_never_stale =
  QCheck.Test.make ~name:"version-keyed consumers never stale" ~count:15
    (QCheck.list_of_size (QCheck.Gen.int_range 0 18)
       (QCheck.pair (QCheck.int_range 0 4) (QCheck.int_range 0 1000)))
  @@ fun raw_ops ->
  let ops = List.map op_of raw_ops in
  List.for_all
    (fun (shards, domains) ->
      Domain_pool.with_pool ~domains (fun pool ->
          let g =
            Gen.random_connected (Prng.create ~seed:21) ~n:14 ~extra_edges:10
          in
          let net = Network.init ~rng:(Prng.create ~seed:22) g (sp 14) in
          let mk () =
            Runner.start ~dirty:true ~max_rounds:200 ~pool ~shards net
          in
          let session = ref (mk ()) in
          let cp = ref None in
          let cache = Hashtbl.create 64 in
          let consistent () = cached_digest cache g = liveness_digest g in
          List.for_all
            (fun o ->
              (match o with
              | Rounds k ->
                  for _ = 1 to k do
                    if Runner.session_result !session <> None then
                      session := mk ();
                    ignore (Runner.step !session)
                  done
              | Kill_node v ->
                  if Graph.is_live_node g v then Graph.remove_node g v
              | Kill_edge k -> (
                  match Graph.edges g with
                  | [] -> ()
                  | es ->
                      Graph.remove_edge g
                        (List.nth es (k mod List.length es)).Graph.id)
              | Cp -> cp := Some (Network.checkpoint net)
              | Restore -> (
                  match !cp with
                  | Some c -> Network.restore net c
                  | None -> ()));
              consistent ())
            ops))
    [ (1, 1); (1, 2); (3, 1); (3, 2) ]

(* --- daemon end-to-end ------------------------------------------------- *)

(* Daemon and client share this one thread: the client writes a frame,
   hand-ticks the daemon's event loop until the reply is readable, then
   reads it — the same co-operative pattern the bench harness uses via
   the hammer's [pump] hook. *)
let sock_path =
  let k = ref 0 in
  fun () ->
    incr k;
    Printf.sprintf "/tmp/symnet-test-%d-%d.sock" (Unix.getpid ()) !k

let pump d fd =
  let ready () =
    match Unix.select [ fd ] [] [] 0. with [], _, _ -> false | _ -> true
  in
  while not (ready ()) do
    Daemon.tick ~timeout:0.01 d
  done

let rpc d fd req =
  Wire.write_frame fd (Protocol.encode req);
  pump d fd;
  match Wire.read_frame fd with
  | None -> Alcotest.fail "daemon closed the connection"
  | Some s -> (
      match Jsonx.of_string s with
      | Ok j -> j
      | Error e -> Alcotest.failf "unparseable response: %s" e)

let get path j =
  List.fold_left (fun acc name -> Option.bind acc (Jsonx.member name))
    (Some j) path

let get_int path j = Option.bind (get path j) Jsonx.to_int

let check_ok j =
  Alcotest.(check (option bool)) "ok response" (Some true)
    (Option.bind (Jsonx.member "ok" j) Jsonx.to_bool)

let test_daemon_e2e () =
  let g = Gen.grid ~rows:6 ~cols:6 in
  let net =
    Network.init ~rng:(Prng.create ~seed:9) g
      (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:36)
  in
  let addr = Daemon.Unix_sock (sock_path ()) in
  let d =
    Daemon.create
      ~state_json:(fun s -> Jsonx.Int (A.Shortest_paths.label s))
      ~session:(fun () -> Runner.start ~dirty:true net)
      addr
  in
  Fun.protect
    ~finally:(fun () -> Daemon.close d)
    (fun () ->
      let fd = Daemon.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let j = rpc d fd (Protocol.Query Protocol.Status) in
          check_ok j;
          Alcotest.(check (option int)) "node count" (Some 36)
            (get_int [ "data"; "nodes" ] j);
          let v0 = Option.get (get_int [ "snapshot"; "version" ] j) in
          (* let the network stabilize, then distances are exact *)
          for _ = 1 to 30 do
            Daemon.tick d
          done;
          let j =
            rpc d fd
              (Protocol.Query
                 (Protocol.Distances { sources = [ 0 ]; targets = [ 0; 7 ] }))
          in
          check_ok j;
          (match get [ "data" ] j with
          | Some (Jsonx.List [ a; b ]) ->
              Alcotest.(check (option int)) "d(0,0)" (Some 0)
                (get_int [ "distance" ] a);
              Alcotest.(check (option int)) "d(0,7) on the grid" (Some 2)
                (get_int [ "distance" ] b)
          | _ -> Alcotest.fail "bad distances payload");
          (* a mutation advances the snapshot stamp, never rewinds it *)
          let j = rpc d fd (Protocol.Mutate (Protocol.Kill_node 7)) in
          check_ok j;
          Alcotest.(check (option bool)) "kill effective" (Some true)
            (Option.bind (get [ "data"; "effective" ] j) Jsonx.to_bool);
          let v1 = Option.get (get_int [ "snapshot"; "version" ] j) in
          Alcotest.(check bool) "stamp advanced" true (v1 > v0);
          let j = rpc d fd (Protocol.Query (Protocol.Node_state [ 7; 99 ])) in
          check_ok j;
          (match get [ "data" ] j with
          | Some (Jsonx.List [ a; b ]) ->
              Alcotest.(check (option bool)) "killed node reported dead"
                (Some false)
                (Option.bind (get [ "live" ] a) Jsonx.to_bool);
              Alcotest.(check bool) "out-of-range id reports an error" true
                (get [ "error" ] b <> None)
          | _ -> Alcotest.fail "bad node_state payload");
          (* a batch answers in one frame, all queries on one snapshot *)
          let j =
            rpc d fd
              (Protocol.Batch
                 [
                   Protocol.Query Protocol.Status;
                   Protocol.Query Protocol.Census;
                   Protocol.Query Protocol.Telemetry;
                 ])
          in
          check_ok j;
          (match get [ "results" ] j with
          | Some (Jsonx.List rs) ->
              Alcotest.(check int) "three results" 3 (List.length rs);
              let stamps =
                List.filter_map (get_int [ "snapshot"; "version" ]) rs
              in
              Alcotest.(check bool) "batch shares one snapshot" true
                (List.for_all (fun v -> v = List.hd stamps) stamps)
          | _ -> Alcotest.fail "bad batch payload");
          (* malformed frames answer with ok:false, not a dropped client *)
          Wire.write_frame fd "not json";
          pump d fd;
          (match Wire.read_frame fd with
          | Some s -> (
              match Jsonx.of_string s with
              | Ok j ->
                  Alcotest.(check (option bool)) "error envelope" (Some false)
                    (Option.bind (Jsonx.member "ok" j) Jsonx.to_bool)
              | Error e -> Alcotest.failf "unparseable error reply: %s" e)
          | None -> Alcotest.fail "daemon dropped the client on bad input");
          let j = rpc d fd Protocol.Shutdown in
          check_ok j;
          Alcotest.(check bool) "daemon stopped" false (Daemon.running d)))

let test_daemon_restarts_after_quiescence () =
  let g = Gen.grid ~rows:4 ~cols:4 in
  let net =
    Network.init ~rng:(Prng.create ~seed:2) g
      (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:16)
  in
  let starts = ref 0 in
  let addr = Daemon.Unix_sock (sock_path ()) in
  let d =
    Daemon.create
      ~state_json:(fun s -> Jsonx.Int (A.Shortest_paths.label s))
      ~session:(fun () ->
        incr starts;
        Runner.start ~dirty:true net)
      addr
  in
  Fun.protect
    ~finally:(fun () -> Daemon.close d)
    (fun () ->
      for _ = 1 to 60 do
        Daemon.tick ~timeout:0. d
      done;
      Alcotest.(check int) "one session so far" 1 !starts;
      let fd = Daemon.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let j = rpc d fd (Protocol.Query Protocol.Status) in
          Alcotest.(check (option bool)) "quiesced" (Some true)
            (Option.bind (get [ "data"; "quiesced" ] j) Jsonx.to_bool);
          (* an effective mutation re-arms a session over the same net *)
          let j = rpc d fd (Protocol.Mutate (Protocol.Kill_node 5)) in
          check_ok j;
          Alcotest.(check int) "mutation re-armed a session" 2 !starts;
          (* a no-op mutation must not *)
          let j = rpc d fd (Protocol.Mutate (Protocol.Kill_node 5)) in
          Alcotest.(check (option bool)) "second kill is a no-op" (Some false)
            (Option.bind (get [ "data"; "effective" ] j) Jsonx.to_bool);
          Alcotest.(check int) "no-op did not re-arm" 2 !starts))

(* --- incremental decoder ----------------------------------------------- *)

let test_decoder_incremental () =
  let d = Wire.decoder () in
  let frame = Bytes.to_string (Wire.encode_frame "hello") in
  (* byte-at-a-time: Need_more until the last byte lands *)
  String.iteri
    (fun i ch ->
      (match Wire.next d with
      | Wire.Need_more -> ()
      | _ -> Alcotest.failf "premature frame at byte %d" i);
      Wire.feed d (Bytes.make 1 ch) 1)
    frame;
  (match Wire.next d with
  | Wire.Frame "hello" -> ()
  | _ -> Alcotest.fail "frame not reassembled");
  (* two frames in one chunk come out one next at a time *)
  let two =
    Bytes.cat (Wire.encode_frame "one") (Wire.encode_frame "two")
  in
  Wire.feed d two (Bytes.length two);
  (match (Wire.next d, Wire.next d, Wire.next d) with
  | Wire.Frame "one", Wire.Frame "two", Wire.Need_more -> ()
  | _ -> Alcotest.fail "pipelined frames mis-split")

let test_decoder_bad_lengths_sticky () =
  let check_bad label header =
    let d = Wire.decoder () in
    Wire.feed d header (Bytes.length header);
    (match Wire.next d with
    | Wire.Bad _ -> ()
    | _ -> Alcotest.failf "%s accepted" label);
    (* sticky: further input is discarded, the verdict stands *)
    let good = Wire.encode_frame "x" in
    Wire.feed d good (Bytes.length good);
    match Wire.next d with
    | Wire.Bad _ -> ()
    | _ -> Alcotest.failf "%s verdict not sticky" label
  in
  let header v =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 v;
    b
  in
  check_bad "oversized length" (header (Int32.of_int (Wire.max_frame + 1)));
  check_bad "negative length" (header (-1l))

(* --- wire-frame fuzzer -------------------------------------------------- *)

(* A hostile or broken client must cost at most its own connection: the
   daemon evicts it and keeps answering well-formed requests from
   everyone else.  Deterministic fuzz — the blobs come off a seeded
   Prng, so a failure reproduces. *)
let test_daemon_survives_frame_garbage () =
  let g = Gen.grid ~rows:5 ~cols:5 in
  let net =
    Network.init ~rng:(Prng.create ~seed:4) g
      (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:25)
  in
  let addr = Daemon.Unix_sock (sock_path ()) in
  let d =
    Daemon.create
      ~state_json:(fun s -> Jsonx.Int (A.Shortest_paths.label s))
      ~session:(fun () -> Runner.start ~dirty:true net)
      addr
  in
  Fun.protect
    ~finally:(fun () -> Daemon.close d)
    (fun () ->
      let rng = Prng.create ~seed:0xf022 in
      let send_raw bytes =
        let fd = Daemon.connect addr in
        (try ignore (Unix.write fd bytes 0 (Bytes.length bytes))
         with Unix.Unix_error _ -> ());
        (* let the daemon accept, read and (if warranted) evict *)
        for _ = 1 to 5 do
          Daemon.tick ~timeout:0. d
        done;
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let header v =
        let b = Bytes.create 4 in
        Bytes.set_int32_be b 0 (Int32.of_int v);
        b
      in
      let adversaries =
        [
          (* oversized and negative length prefixes *)
          header (Wire.max_frame + 1);
          header (-1);
          Bytes.of_string "\xff\xff\xff\xff\xff\xff\xff\xff";
          (* a length promising more than ever arrives, then hangup *)
          Bytes.cat (header 1000) (Bytes.of_string "abc");
          (* empty write, immediate hangup *)
          Bytes.create 0;
        ]
      in
      List.iter send_raw adversaries;
      (* seeded random blobs *)
      for _ = 1 to 20 do
        let len = 1 + Prng.int rng 64 in
        send_raw (Bytes.init len (fun _ -> Char.chr (Prng.int rng 256)))
      done;
      (* the daemon is unimpressed: a fresh well-formed client is served *)
      let fd = Daemon.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let j = rpc d fd (Protocol.Query Protocol.Status) in
          check_ok j;
          Alcotest.(check (option int)) "still all nodes" (Some 25)
            (get_int [ "data"; "nodes" ] j);
          Alcotest.(check (option int)) "no supervisor restarts" (Some 0)
            (get_int [ "data"; "restarts" ] j)))

let test_daemon_garbage_json_in_valid_frame () =
  (* Malformed JSON inside a well-formed frame is a protocol error, not
     a framing error: the daemon answers ok:false and the connection
     stays usable. *)
  let g = Gen.grid ~rows:4 ~cols:4 in
  let net =
    Network.init ~rng:(Prng.create ~seed:6) g
      (A.Shortest_paths.automaton ~sinks:[ 0 ] ~cap:16)
  in
  let addr = Daemon.Unix_sock (sock_path ()) in
  let d =
    Daemon.create
      ~state_json:(fun s -> Jsonx.Int (A.Shortest_paths.label s))
      ~session:(fun () -> Runner.start ~dirty:true net)
      addr
  in
  Fun.protect
    ~finally:(fun () -> Daemon.close d)
    (fun () ->
      let fd = Daemon.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          List.iter
            (fun garbage ->
              Wire.write_frame fd garbage;
              pump d fd;
              match Wire.read_frame fd with
              | None -> Alcotest.fail "daemon closed on garbage JSON"
              | Some s -> (
                  match Jsonx.of_string s with
                  | Error e -> Alcotest.failf "unparseable error reply: %s" e
                  | Ok j ->
                      Alcotest.(check (option bool))
                        "garbage answered ok:false" (Some false)
                        (Option.bind (Jsonx.member "ok" j) Jsonx.to_bool)))
            [ "this is not json"; "{\"op\":"; "{\"op\":\"no-such-op\"}"; "" ];
          (* same connection still serves real requests *)
          let j = rpc d fd (Protocol.Query Protocol.Status) in
          check_ok j))

let suite =
  [
    Alcotest.test_case "wire round-trip + clean EOF" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire truncated frame raises" `Quick test_wire_truncated;
    Alcotest.test_case "protocol codec round-trips" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects garbage" `Quick
      test_protocol_rejects_garbage;
    Alcotest.test_case "view snapshot isolation" `Quick test_view_isolation;
    Alcotest.test_case "session ≡ run (deterministic)" `Quick
      test_session_equals_run;
    Alcotest.test_case "session ≡ run (probabilistic)" `Quick
      test_session_equals_run_probabilistic;
    Alcotest.test_case "rewind collision: Graph.restore" `Quick
      test_rewind_collision_graph;
    Alcotest.test_case "rewind collision: Network.restore" `Quick
      test_rewind_collision_network;
    Alcotest.test_case "rewind collision: incremental digest" `Quick
      test_rewind_collision_digest;
    QCheck_alcotest.to_alcotest prop_version_keyed_never_stale;
    Alcotest.test_case "daemon end-to-end" `Quick test_daemon_e2e;
    Alcotest.test_case "daemon restarts after quiescence" `Quick
      test_daemon_restarts_after_quiescence;
    Alcotest.test_case "decoder reassembles incrementally" `Quick
      test_decoder_incremental;
    Alcotest.test_case "decoder bad lengths are sticky" `Quick
      test_decoder_bad_lengths_sticky;
    Alcotest.test_case "daemon survives frame garbage" `Quick
      test_daemon_survives_frame_garbage;
    Alcotest.test_case "daemon answers garbage JSON in valid frames" `Quick
      test_daemon_garbage_json_in_valid_frame;
  ]
