module View = Symnet_core.View

let v = View.of_list [ 1; 2; 2; 3; 3; 3 ]

let test_at_least () =
  Alcotest.(check bool) "1 >= 1" true (View.at_least v 1 1);
  Alcotest.(check bool) "1 >= 2" false (View.at_least v 1 2);
  Alcotest.(check bool) "3 >= 3" true (View.at_least v 3 3);
  Alcotest.(check bool) "3 >= 4" false (View.at_least v 3 4);
  Alcotest.(check bool) "absent" false (View.at_least v 9 1)

let test_count_upto () =
  Alcotest.(check int) "cap above" 3 (View.count_upto v 3 ~cap:5);
  Alcotest.(check int) "cap below" 2 (View.count_upto v 3 ~cap:2);
  Alcotest.(check int) "missing" 0 (View.count_upto v 7 ~cap:4);
  Alcotest.(check int) "cap zero" 0 (View.count_upto v 3 ~cap:0)

let test_count_mod () =
  Alcotest.(check int) "3 mod 2" 1 (View.count_mod v 3 ~modulus:2);
  Alcotest.(check int) "2 mod 2" 0 (View.count_mod v 2 ~modulus:2);
  Alcotest.(check int) "3 mod 5" 3 (View.count_mod v 3 ~modulus:5)

let test_predicates () =
  Alcotest.(check bool) "exists even" true (View.exists v (fun q -> q mod 2 = 0));
  Alcotest.(check bool) "not all even" false (View.for_all v (fun q -> q mod 2 = 0));
  Alcotest.(check bool) "all positive" true (View.for_all v (fun q -> q > 0));
  Alcotest.(check int) "count evens capped" 2
    (View.count_where_upto v (fun q -> q mod 2 = 0) ~cap:9);
  Alcotest.(check int) "count odds mod 3" 1
    (View.count_where_mod v (fun q -> q mod 2 = 1) ~modulus:3)

let test_map_merges () =
  let mapped = View.map (fun q -> q mod 2) v in
  (* 1,3,3,3 -> 1 (x4); 2,2 -> 0 (x2) *)
  Alcotest.(check bool) "odd multiplicity 4" true (View.at_least mapped 1 4);
  Alcotest.(check bool) "not 5" false (View.at_least mapped 1 5);
  Alcotest.(check int) "even count" 2 (View.count_upto mapped 0 ~cap:10)

let test_empty () =
  let e = View.of_list [] in
  Alcotest.(check bool) "is_empty" true (View.is_empty e);
  Alcotest.(check bool) "non-empty" false (View.is_empty v);
  Alcotest.(check bool) "for_all vacuous" true (View.for_all e (fun _ -> false));
  Alcotest.(check bool) "exists vacuous" false (View.exists e (fun _ -> true))

let test_invalid_args () =
  Alcotest.check_raises "negative cap"
    (Invalid_argument "View.count_upto: negative cap") (fun () ->
      ignore (View.count_upto v 1 ~cap:(-1)));
  Alcotest.check_raises "negative cap (where)"
    (Invalid_argument "View.count_where_upto: negative cap") (fun () ->
      ignore (View.count_where_upto v (fun _ -> true) ~cap:(-1)));
  Alcotest.check_raises "bad modulus"
    (Invalid_argument "View.count_mod: modulus >= 1") (fun () ->
      ignore (View.count_mod v 1 ~modulus:0));
  Alcotest.check_raises "bad modulus (where)"
    (Invalid_argument "View.count_where_mod: modulus >= 1") (fun () ->
      ignore (View.count_where_mod v (fun _ -> true) ~modulus:0))

(* Order independence: every observation must agree across permutations —
   the SM-by-construction claim for the view interface. *)
let prop_order_independent =
  QCheck.Test.make ~name:"view observations are order independent" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 8) (int_range 0 3)) (int_range 0 100))
    (fun (states, seed) ->
      QCheck.assume (states <> []);
      let rng = Symnet_prng.Prng.create ~seed in
      let arr = Array.of_list states in
      Symnet_prng.Prng.shuffle rng arr;
      let v1 = View.of_list states in
      let v2 = View.of_list (Array.to_list arr) in
      List.for_all
        (fun q ->
          View.at_least v1 q 2 = View.at_least v2 q 2
          && View.count_upto v1 q ~cap:3 = View.count_upto v2 q ~cap:3
          && View.count_mod v1 q ~modulus:2 = View.count_mod v2 q ~modulus:2)
        [ 0; 1; 2; 3 ])

(* §3.1's impossibility remark made precise: with finite caps, a node
   cannot count its neighbours — any two multisets whose per-state counts
   agree up to every cap and modulus used are observationally identical,
   regardless of their true sizes. *)
let prop_cannot_count_neighbours =
  QCheck.Test.make ~name:"degree is invisible beyond the caps" ~count:100
    QCheck.(triple (int_range 1 4) (int_range 5 30) (int_range 5 30))
    (fun (cap, n1, n2) ->
      (* two all-same-state neighbourhoods of very different sizes *)
      let v1 = View.of_list (List.init n1 (fun _ -> 0)) in
      let v2 = View.of_list (List.init n2 (fun _ -> 0)) in
      (* thresh observations up to the cap agree as soon as both sizes
         clear it *)
      QCheck.assume (n1 >= cap && n2 >= cap);
      View.count_upto v1 0 ~cap = View.count_upto v2 0 ~cap
      && View.at_least v1 0 cap = View.at_least v2 0 cap)

let test_filter_map () =
  let v = View.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let evens_doubled =
    View.filter_map (fun q -> if q mod 2 = 0 then Some (q * 2) else None) v
  in
  Alcotest.(check int) "2,4,6 -> 4,8,12" 1 (View.count_upto evens_doubled 8 ~cap:5);
  Alcotest.(check bool) "odds dropped" false (View.exists evens_doubled (fun q -> q mod 2 = 1));
  Alcotest.(check int) "three survivors" 3
    (View.count_where_upto evens_doubled (fun _ -> true) ~cap:9)

let test_join_with () =
  Alcotest.(check (option int)) "max join" (Some 6)
    (View.join_with max (View.of_list [ 3; 6; 1 ]));
  Alcotest.(check (option int)) "empty" None (View.join_with max (View.of_list []))

let suite =
  [
    Alcotest.test_case "at_least" `Quick test_at_least;
    Alcotest.test_case "count_upto" `Quick test_count_upto;
    Alcotest.test_case "count_mod" `Quick test_count_mod;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "map merges multiplicities" `Quick test_map_merges;
    Alcotest.test_case "empty view" `Quick test_empty;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "filter_map" `Quick test_filter_map;
    Alcotest.test_case "join_with" `Quick test_join_with;
    QCheck_alcotest.to_alcotest prop_order_independent;
    QCheck_alcotest.to_alcotest prop_cannot_count_neighbours;
  ]
