(* Differential tests for the engine hot path:
   - the CSR adjacency agrees with a reference adjacency rebuilt from the
     live edge list, on random graphs under random deletions;
   - change-driven (dirty-set) scheduling produces bit-identical final
     states and round counts to naive stepping for deterministic
     automata, including under faults and direct graph mutation. *)

module Gen = Symnet_graph.Gen
module Graph = Symnet_graph.Graph
module Prng = Symnet_prng.Prng
module Network = Symnet_engine.Network
module Runner = Symnet_engine.Runner
module Scheduler = Symnet_engine.Scheduler
module Fault = Symnet_engine.Fault
module Sp = Symnet_algorithms.Shortest_paths

(* A random graph plus a deletion schedule, both derived from the qcheck
   integers so every case is reproducible. *)
let build_mutated (n, extra, dels) =
  let g =
    Gen.random_connected (Prng.create ~seed:(n + (97 * extra))) ~n ~extra_edges:extra
  in
  let rng = Prng.create ~seed:(dels + 13) in
  for _ = 1 to dels do
    if Prng.bool rng then begin
      (* spare node 0 so the graph keeps at least one live node *)
      let v = 1 + Prng.int rng (max 1 (n - 1)) in
      if v < n then Graph.remove_node g v
    end
    else begin
      let m = List.length (Graph.edges g) in
      if m > 0 then
        let e = List.nth (Graph.edges g) (Prng.int rng m) in
        Graph.remove_edge g e.Graph.id
    end
  done;
  g

(* Reference adjacency from the public live-edge list: each row ascending
   by edge id, which is the order the legacy list representation used and
   the CSR rows preserve. *)
let reference_adjacency g =
  let n = Graph.original_size g in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Graph.edge) ->
      adj.(e.u) <- e.v :: adj.(e.u);
      adj.(e.v) <- e.u :: adj.(e.v))
    (List.rev (Graph.edges g));
  adj

let prop_csr_matches_reference =
  QCheck.Test.make ~name:"CSR adjacency = edge-list reference under deletions"
    ~count:60
    QCheck.(triple (int_range 2 40) (int_range 0 40) (int_range 0 15))
    (fun case ->
      let g = build_mutated case in
      let adj = reference_adjacency g in
      let ok = ref true in
      for v = 0 to Graph.original_size g - 1 do
        let expected = if Graph.is_live_node g v then adj.(v) else [] in
        if Graph.neighbours g v <> expected then ok := false;
        if Graph.degree g v <> List.length expected then ok := false;
        (* iter_neighbours agrees with the list shim, in order *)
        let acc = ref [] in
        Graph.iter_neighbours g v (fun w -> acc := w :: !acc);
        if List.rev !acc <> expected then ok := false
      done;
      let md =
        Array.fold_left max 0
          (Array.mapi
             (fun v l -> if Graph.is_live_node g v then List.length l else 0)
             adj)
      in
      !ok && Graph.max_degree g = md)

(* --- dirty-set differential tests ----------------------------------- *)

let final_states net =
  List.map (fun (v, s) -> (v, Sp.label s)) (Network.states net)

let run_both ?faults scheduler (n, extra) =
  let mk () =
    Gen.random_connected (Prng.create ~seed:(n + (61 * extra))) ~n ~extra_edges:extra
  in
  let run ~dirty =
    let g = mk () in
    let cap = Graph.node_count g in
    let net =
      Network.init ~rng:(Prng.create ~seed:7) g
        (Sp.automaton ~sinks:[ 0 ] ~cap)
    in
    let outcome = Runner.run ~scheduler ~dirty ?faults net in
    (outcome.Runner.rounds, outcome.Runner.quiesced, final_states net)
  in
  (run ~dirty:true, run ~dirty:false)

let prop_dirty_equals_naive_sync =
  QCheck.Test.make ~name:"dirty sync = naive sync (rounds and states)"
    ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 30))
    (fun case ->
      let d, nv = run_both Scheduler.Synchronous case in
      d = nv)

let prop_dirty_equals_naive_rotor =
  QCheck.Test.make ~name:"dirty rotor = naive rotor (rounds and states)"
    ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 30))
    (fun case ->
      let d, nv = run_both Scheduler.Rotor case in
      d = nv)

let prop_dirty_equals_naive_with_faults =
  QCheck.Test.make ~name:"dirty = naive under mid-run faults" ~count:40
    QCheck.(triple (int_range 4 40) (int_range 0 30) (int_range 1 5))
    (fun (n, extra, at) ->
      let faults =
        [
          { Fault.at_round = at; action = Fault.Kill_edge (1, 2) };
          { Fault.at_round = at + 1; action = Fault.Kill_node (n - 1) };
        ]
      in
      let d, nv = run_both ~faults Scheduler.Synchronous (n, extra) in
      d = nv)

(* Direct graph mutation (outside the runner's fault pipeline) is picked
   up via the graph version counter: re-running after a surgical
   [remove_edge_between] must re-converge exactly like naive stepping. *)
let test_direct_mutation_reconciles () =
  let run ~dirty =
    let g = Gen.path 12 in
    let net =
      Network.init ~rng:(Prng.create ~seed:3) g
        (Sp.automaton ~sinks:[ 0 ] ~cap:12)
    in
    ignore (Runner.run ~dirty net);
    Graph.remove_edge_between g 5 6;
    let outcome = Runner.run ~dirty net in
    (outcome.Runner.rounds, final_states net)
  in
  let rd, sd = run ~dirty:true in
  let rn, sn = run ~dirty:false in
  Alcotest.(check int) "rounds equal" rn rd;
  Alcotest.(check (list (pair int int))) "states equal" sn sd

(* The scheduler must refuse the fast path for probabilistic automata:
   with a fixed seed, a run with [~dirty:true] must consume the rng
   exactly like a naive run. *)
let test_probabilistic_uses_naive () =
  let g = Gen.cycle 9 in
  let run ~dirty =
    let net =
      Network.init ~rng:(Prng.create ~seed:11) g
        (Symnet_algorithms.Random_walk.automaton ~start:0)
    in
    for r = 1 to 40 do
      ignore (Scheduler.round ~dirty Scheduler.Synchronous net ~round:r)
    done;
    List.map snd (Network.states net)
  in
  Alcotest.(check bool) "identical trajectories" true
    (run ~dirty:true = run ~dirty:false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_csr_matches_reference;
    QCheck_alcotest.to_alcotest prop_dirty_equals_naive_sync;
    QCheck_alcotest.to_alcotest prop_dirty_equals_naive_rotor;
    QCheck_alcotest.to_alcotest prop_dirty_equals_naive_with_faults;
    Alcotest.test_case "direct mutation reconciles" `Quick
      test_direct_mutation_reconciles;
    Alcotest.test_case "probabilistic stays naive" `Quick
      test_probabilistic_uses_naive;
  ]
